package sched_test

import (
	"math"
	"testing"

	"arcsim/internal/sched"
	"arcsim/internal/sched/simtest"
)

// FuzzSchedPlan decodes arbitrary bytes into a fleet and a cost vector,
// runs the full scheduler on the deterministic simulation harness, and
// asserts the core invariants: no panic, every job completes exactly
// once (no losses, no duplicates), the schedule is work-conserving, and
// the makespan is finite. The fuzzer owns costs, slot counts, pipeline
// depth, priorities, and mis-estimations — everything the planner's
// arithmetic touches.
func FuzzSchedPlan(f *testing.F) {
	f.Add([]byte{2, 4, 1, 10, 20, 30, 5})
	f.Add([]byte{1, 1, 255, 255, 0, 0, 7})
	f.Add([]byte{3, 2, 3, 1, 9, 9, 9, 9, 100, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 || len(data) > 256 {
			return
		}
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		neps := 1 + int(next())%4
		cfg := simtest.Config{}
		for i := 0; i < neps; i++ {
			cfg.Endpoints = append(cfg.Endpoints, simtest.Endpoint{
				Name:  string(rune('a' + i)),
				Slots: 1 + int(next())%4,
			})
		}
		cfg.Opts = sched.Options{PipelineDepth: int(next()) % 5}
		id := int64(1)
		for len(data) > 0 {
			j := simtest.Job{
				ID:       id,
				Cost:     float64(next()),
				Priority: int(next()) % 3,
			}
			if b := next(); b%4 == 0 {
				// Scripted mis-estimation: true demand disagrees with the
				// prediction, exercising steals.
				j.Units = float64(b)
			}
			if j.Cost == 0 {
				j.Cost = 0.5 // zero-cost jobs are legal but make LB degenerate
			}
			cfg.Jobs = append(cfg.Jobs, j)
			id++
		}
		if len(cfg.Jobs) == 0 {
			return
		}
		r := simtest.Run(cfg)
		for jid, n := range r.Completions {
			if n != 1 {
				t.Fatalf("job %d completed %d times, want exactly once", jid, n)
			}
		}
		if len(r.Failed) != 0 {
			t.Fatalf("jobs failed with no endpoint deaths scripted: %v", r.Failed)
		}
		if len(r.IdleViolations) != 0 {
			t.Fatalf("work-conservation violated: %s", r.IdleViolations[0])
		}
		if math.IsNaN(r.Makespan) || math.IsInf(r.Makespan, 0) {
			t.Fatalf("makespan = %v", r.Makespan)
		}
	})
}
