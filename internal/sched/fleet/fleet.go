// Package fleet is the production driver for the cost-model scheduler:
// it executes sched.Core directives against real arcsimd daemons through
// internal/client, scrapes per-endpoint load from /metrics, and feeds
// every observation (submissions, completions, faults, probe samples,
// cancel confirmations) back into the Core.
//
// The division of labor mirrors internal/sched's package comment: the
// Core decides, fleet does. Where client.Pool picks an endpoint per job
// and babysits it, fleet keeps a whole sweep's worth of jobs in flight
// across the fleet at once, pipelines work onto each daemon's queue, and
// executes the Core's steal/preempt cancels with the requeue-safe
// ?reason=preempt cancel the daemon recognizes — preserving the PR-4
// exactly-once and cancel-reason guarantees end to end.
package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"arcsim/internal/client"
	"arcsim/internal/sched"
	"arcsim/internal/server"
	"arcsim/internal/sim"
)

// ParseLoad extracts a sched.Load from /metrics text. It requires the
// gauges the scheduler plans on — arcsimd_workers, arcsimd_queue_depth,
// arcsimd_up — and returns an error for anything missing or unparseable
// (a partial sample is worse than none: the Core degrades to round-robin
// on probe failure instead of planning on fiction). Busy workers prefer
// arcsimd_busy_workers, falling back to arcsimd_jobs_running for older
// daemons.
func ParseLoad(text []byte) (sched.Load, error) {
	var l sched.Load
	seen := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i] // labeled families are not load gauges
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(value), 64)
		if err != nil {
			return sched.Load{}, fmt.Errorf("fleet: bad metric line %q: %w", line, err)
		}
		switch name {
		case "arcsimd_workers":
			l.Workers = int(v)
		case "arcsimd_busy_workers":
			l.Busy = int(v)
		case "arcsimd_jobs_running":
			if !seen["arcsimd_busy_workers"] {
				l.Busy = int(v)
			}
		case "arcsimd_queue_depth":
			l.Queue = int(v)
		case "arcsimd_queue_capacity":
			l.QueueCap = int(v)
		case "arcsimd_up":
			l.Up = v > 0
		default:
			continue
		}
		seen[name] = true
	}
	if err := sc.Err(); err != nil {
		return sched.Load{}, fmt.Errorf("fleet: reading metrics: %w", err)
	}
	for _, need := range []string{"arcsimd_workers", "arcsimd_queue_depth", "arcsimd_up"} {
		if !seen[need] {
			return sched.Load{}, fmt.Errorf("fleet: metrics missing %s", need)
		}
	}
	if l.Workers <= 0 {
		return sched.Load{}, fmt.Errorf("fleet: implausible arcsimd_workers %d", l.Workers)
	}
	return l, nil
}

// Options tunes a Scheduler.
type Options struct {
	// Client is applied to every endpoint's HTTP client.
	Client client.Options
	// ProbeInterval is how often each endpoint's /metrics is scraped
	// (default 2s; tests use milliseconds).
	ProbeInterval time.Duration
	// Sched tunes the planning core (cooldowns, pipeline depth, fault
	// budget, forced round-robin).
	Sched sched.Options
	// Logf, when set, receives scheduler lifecycle lines.
	Logf func(format string, args ...any)
}

func (o Options) normalized() Options {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.Sched.StaleAfter <= 0 {
		// A sample older than a few probe rounds is fiction.
		o.Sched.StaleAfter = 4 * o.ProbeInterval
	}
	return o
}

// outcome is one job's terminal delivery.
type outcome struct {
	res *sim.Result
	err error
}

// waiter tracks one submitted job from Run to delivery.
type waiter struct {
	spec     client.JobSpec
	ch       chan outcome
	remoteID string // daemon-side job id while dispatched
	endpoint string
	// cancelWanted records a DirCancel that arrived while the submit RPC
	// was still in flight; the dispatcher fires it as soon as the remote
	// id exists.
	cancelWanted bool
	lastErr      error // most recent endpoint fault, for DirFail context
}

// Scheduler drives a fleet of daemons with the cost-model policy.
type Scheduler struct {
	opts    Options
	core    *sched.Core
	clients map[string]*client.Client

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	waiters map[int64]*waiter
	nextID  int64
}

// New builds a Scheduler over the endpoints. Call Start before Run.
func New(endpoints []string, opts Options) *Scheduler {
	opts = opts.normalized()
	s := &Scheduler{
		opts:    opts,
		core:    sched.NewCore(endpoints, opts.Sched),
		clients: make(map[string]*client.Client, len(endpoints)),
		waiters: make(map[int64]*waiter),
	}
	for _, ep := range endpoints {
		s.clients[ep] = client.New(ep, opts.Client)
	}
	return s
}

// Start launches the probe and tick loops. ctx bounds the scheduler's
// lifetime; Stop (or ctx cancellation) ends it.
func (s *Scheduler) Start(ctx context.Context) {
	s.ctx, s.cancel = context.WithCancel(ctx)
	for ep := range s.clients {
		s.wg.Add(1)
		go s.probeLoop(ep)
	}
	s.wg.Add(1)
	go s.tickLoop()
}

// Stop ends the probe loops and waits for them. In-flight Run calls are
// unblocked by their own contexts.
func (s *Scheduler) Stop() {
	if s.cancel != nil {
		s.cancel()
	}
	s.wg.Wait()
}

// Mode reports the dispatch policy currently in force (cost-model, or
// round-robin while load observations are missing/stale/forced).
func (s *Scheduler) Mode() sched.Mode { return s.core.Mode() }

// PeerHolds reports whether any fleet endpoint's store already holds
// the canonical cache key (one HEAD per endpoint, in parallel, first
// hit wins). The cost model prices such a job near zero — on a peered
// fleet it costs one mesh blob fetch wherever it lands, not a
// simulation. Unreachable endpoints simply read as "no".
func (s *Scheduler) PeerHolds(ctx context.Context, key string) bool {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	hits := make(chan bool, len(s.clients))
	for _, c := range s.clients {
		go func(c *client.Client) { hits <- c.StoreHead(ctx, key) }(c)
	}
	for range s.clients {
		if <-hits {
			return true // cancel() reels in the stragglers
		}
	}
	return false
}

// Snapshot exposes the planning core's state for tooling.
func (s *Scheduler) Snapshot() sched.Snapshot { return s.core.Snapshot() }

// probeLoop scrapes one endpoint's /metrics until the scheduler stops.
// The first probe fires immediately so a fresh fleet leaves degraded
// mode as soon as every daemon answers once.
func (s *Scheduler) probeLoop(ep string) {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.ProbeInterval)
	defer t.Stop()
	for {
		s.probe(ep)
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
		}
	}
}

func (s *Scheduler) probe(ep string) {
	ctx, cancel := context.WithTimeout(s.ctx, s.opts.ProbeInterval)
	raw, err := s.clients[ep].Metrics(ctx)
	cancel()
	if err == nil {
		var l sched.Load
		if l, err = ParseLoad(raw); err == nil {
			s.execute(s.core.UpdateLoad(ep, l))
			return
		}
	}
	if s.ctx.Err() != nil {
		return
	}
	s.opts.Logf("sched: probe %s failed: %v", ep, err)
	s.execute(s.core.ProbeFailed(ep))
}

// tickLoop replans periodically so endpoint cooldowns expire and stale
// samples demote the policy even when no job events arrive.
func (s *Scheduler) tickLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			s.execute(s.core.Tick())
			s.failPendingIfDead()
		}
	}
}

// Run schedules one job and blocks until its result, its deterministic
// failure, or ctx. Cost comes from sched.EstimateCost (or any consistent
// unit); higher priority preempts lower when the fleet saturates.
func (s *Scheduler) Run(ctx context.Context, spec client.JobSpec, cost float64, priority int) (*sim.Result, error) {
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	w := &waiter{spec: spec, ch: make(chan outcome, 1)}
	s.waiters[id] = w
	s.mu.Unlock()

	job := &sched.Job{
		ID:       id,
		Label:    fmt.Sprintf("%s/%s/%d", spec.Workload, spec.Protocol, spec.Cores),
		Cost:     cost,
		Priority: priority,
	}
	s.execute(s.core.Submit(job))
	s.failPendingIfDead()

	select {
	case out := <-w.ch:
		return out.res, out.err
	case <-ctx.Done():
		s.abandon(id, w)
		return nil, ctx.Err()
	case <-s.ctx.Done():
		s.abandon(id, w)
		return nil, s.ctx.Err()
	}
}

// abandon detaches a job whose caller stopped waiting: the Core forgets
// it and a best-effort cancel reaps the daemon-side run.
func (s *Scheduler) abandon(id int64, w *waiter) {
	s.execute(s.core.Final(id))
	s.mu.Lock()
	delete(s.waiters, id)
	remote, ep := w.remoteID, w.endpoint
	s.mu.Unlock()
	if remote != "" && ep != "" {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		s.clients[ep].Cancel(ctx, remote) //nolint:errcheck // best effort
	}
}

// deliver completes a waiter exactly once (the map entry is the token).
func (s *Scheduler) deliver(id int64, out outcome) {
	s.mu.Lock()
	w := s.waiters[id]
	delete(s.waiters, id)
	s.mu.Unlock()
	if w != nil {
		w.ch <- out
	}
}

// failPendingIfDead mirrors client.Pool's ErrNoEndpoints contract: when
// every endpoint is benched, pending jobs fail fast so callers can fall
// back to local execution instead of waiting out cooldowns.
func (s *Scheduler) failPendingIfDead() {
	snap := s.core.Snapshot()
	if snap.Pending == 0 {
		return
	}
	for _, e := range snap.Endpoints {
		if e.Healthy {
			return
		}
	}
	for _, job := range s.core.FailPending() {
		s.mu.Lock()
		w := s.waiters[job.ID]
		var lastErr error
		if w != nil {
			lastErr = w.lastErr
		}
		s.mu.Unlock()
		if lastErr != nil {
			s.deliver(job.ID, outcome{err: fmt.Errorf("%w (last: %v)", client.ErrNoEndpoints, lastErr)})
		} else {
			s.deliver(job.ID, outcome{err: client.ErrNoEndpoints})
		}
	}
}

// execute carries out the Core's directives. Start directives run their
// job asynchronously; cancels fire asynchronously too (their
// confirmation re-enters the Core from the dispatcher goroutine).
func (s *Scheduler) execute(dirs []sched.Directive) {
	for _, d := range dirs {
		switch d.Kind {
		case sched.DirStart:
			s.wg.Add(1)
			go s.dispatch(d.Endpoint, d.Job.ID)
		case sched.DirCancel:
			s.requestCancel(d.Endpoint, d.Job.ID)
		case sched.DirFail:
			s.mu.Lock()
			w := s.waiters[d.Job.ID]
			var lastErr error
			if w != nil {
				lastErr = w.lastErr
			}
			s.mu.Unlock()
			err := fmt.Errorf("sched: job %s exhausted its endpoint-fault budget", d.Job.Label)
			if lastErr != nil {
				err = fmt.Errorf("%v (last: %w)", err, lastErr)
			}
			s.deliver(d.Job.ID, outcome{err: err})
		}
	}
}

// requestCancel executes a DirCancel: the requeue-safe daemon cancel for
// a steal or preemption. If the job's submit RPC has not finished yet
// the cancel is parked on the waiter; the dispatcher fires it the moment
// the remote id exists.
func (s *Scheduler) requestCancel(ep string, id int64) {
	s.mu.Lock()
	w := s.waiters[id]
	if w == nil {
		s.mu.Unlock()
		return
	}
	remote := w.remoteID
	if remote == "" {
		w.cancelWanted = true
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.cancelRemote(ep, id, remote)
	}()
}

// cancelRemote delivers the ?reason=preempt cancel and reports an
// undeliverable one as CancelFailed (the follower owns the terminal
// state either way).
func (s *Scheduler) cancelRemote(ep string, id int64, remote string) {
	ctx, cancel := context.WithTimeout(s.ctx, 10*time.Second)
	defer cancel()
	err := s.clients[ep].CancelReason(ctx, remote, "preempt")
	if err == nil {
		return // the follower will observe the canceled state and confirm
	}
	// 409 means the job went terminal first (the done-before-cancel
	// race); any error means the cancel did not land. Either way the
	// follower's observation wins.
	s.execute(s.core.CancelFailed(ep, id))
}

// dispatch owns one (job, endpoint) attempt end to end: submit, follow,
// classify the terminal state, and feed the Core. Its classification
// mirrors client.Pool.runOn exactly — same taxonomy, same failover
// semantics — with outcomes routed through the Core instead of a retry
// loop.
func (s *Scheduler) dispatch(ep string, id int64) {
	defer s.wg.Done()
	s.mu.Lock()
	w := s.waiters[id]
	s.mu.Unlock()
	if w == nil {
		return // delivered or abandoned while the directive was in flight
	}
	c := s.clients[ep]

	view, err := c.Submit(s.ctx, w.spec)
	if err != nil {
		s.fault(ep, id, w, fmt.Errorf("submit to %s: %w", ep, err))
		return
	}
	s.mu.Lock()
	w.remoteID, w.endpoint = view.ID, ep
	fireCancel := w.cancelWanted
	w.cancelWanted = false
	s.mu.Unlock()
	if fireCancel {
		s.cancelRemote(ep, id, view.ID)
	}

	final, err := c.Follow(s.ctx, view.ID, func(name, data string) {
		if name != "state" {
			return
		}
		var ev struct {
			State string `json:"state"`
		}
		if json.Unmarshal([]byte(data), &ev) == nil && ev.State == server.StateRunning {
			s.core.Started(ep, id)
		}
	})
	if err != nil {
		if errors.Is(err, client.ErrJobLost) {
			// The daemon restarted under the job: resubmit, no bench.
			s.execute(s.core.Lost(ep, id))
			s.failPendingIfDead()
			return
		}
		s.fault(ep, id, w, fmt.Errorf("follow on %s: %w", ep, err))
		return
	}
	if final.Spec != view.Spec {
		// The id came back naming someone else's job (see Pool.runOn).
		s.execute(s.core.Lost(ep, id))
		s.failPendingIfDead()
		return
	}

	switch final.State {
	case server.StateDone:
		res, err := c.Result(s.ctx, final.ID)
		if err != nil {
			s.fault(ep, id, w, fmt.Errorf("result from %s: %w", ep, err))
			return
		}
		s.deliver(id, outcome{res: res})
		s.execute(s.core.Done(ep, id))
	case server.StateFailed:
		// Deterministic failure: identical everywhere, no failover.
		s.deliver(id, outcome{err: &client.JobFailedError{View: final}})
		s.execute(s.core.Final(id))
	case server.StateCanceled:
		switch final.Error {
		case server.CancelReasonDrain:
			// The daemon is going down; requeue elsewhere, bench it.
			s.fault(ep, id, w, fmt.Errorf("job %s canceled by drain on %s", final.ID, ep))
		case server.CancelReasonPreempt:
			// Our own steal/preempt (or an external requeue-safe cancel):
			// confirm and let the Core place it again.
			s.execute(s.core.Canceled(ep, id))
		default:
			// Operator cancel: honored, never resurrected.
			s.deliver(id, outcome{err: fmt.Errorf("%w: job %s on %s: %s",
				client.ErrJobCanceled, final.ID, ep, final.Error)})
			s.execute(s.core.Final(id))
		}
	default:
		s.fault(ep, id, w, fmt.Errorf("job %s ended %s on %s: %s", final.ID, final.State, ep, final.Error))
	}
}

// fault records an endpoint fault against the job and replans.
func (s *Scheduler) fault(ep string, id int64, w *waiter, err error) {
	if s.ctx.Err() != nil {
		return // shutting down: the waiter unblocks via context
	}
	s.opts.Logf("sched: %v", err)
	s.mu.Lock()
	w.lastErr = err
	s.mu.Unlock()
	s.execute(s.core.Fault(ep, id))
	s.failPendingIfDead()
}
