package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"arcsim/internal/client"
	"arcsim/internal/sched"
	"arcsim/internal/server"
	"arcsim/internal/sim"
)

// --- ParseLoad: the probe's contract with /metrics -------------------

func TestParseLoad(t *testing.T) {
	full := `# HELP arcsimd_up whether the daemon accepts work
arcsimd_up 1
arcsimd_workers 4
arcsimd_busy_workers 3
arcsimd_jobs_running 9
arcsimd_queue_depth 7
arcsimd_queue_capacity 64
arcsimd_jobs_total{state="done"} 12
`
	cases := []struct {
		name    string
		text    string
		want    sched.Load
		wantErr bool
	}{
		{
			name: "full sample",
			text: full,
			want: sched.Load{Workers: 4, Busy: 3, Queue: 7, QueueCap: 64, Up: true},
		},
		{
			name: "busy falls back to jobs_running",
			text: "arcsimd_up 1\narcsimd_workers 2\narcsimd_jobs_running 1\narcsimd_queue_depth 0\n",
			want: sched.Load{Workers: 2, Busy: 1, Queue: 0, Up: true},
		},
		{
			name: "fallback yields to the dedicated gauge in either order",
			text: "arcsimd_up 0\narcsimd_busy_workers 2\narcsimd_jobs_running 5\narcsimd_workers 2\narcsimd_queue_depth 1\n",
			want: sched.Load{Workers: 2, Busy: 2, Queue: 1, Up: false},
		},
		{name: "empty body", text: "", wantErr: true},
		{name: "comments only", text: "# nothing here\n", wantErr: true},
		{
			name:    "missing queue_depth",
			text:    "arcsimd_up 1\narcsimd_workers 2\narcsimd_busy_workers 0\n",
			wantErr: true,
		},
		{
			name:    "unparseable value",
			text:    "arcsimd_up 1\narcsimd_workers banana\narcsimd_queue_depth 0\n",
			wantErr: true,
		},
		{
			name:    "zero workers is implausible",
			text:    "arcsimd_up 1\narcsimd_workers 0\narcsimd_queue_depth 0\n",
			wantErr: true,
		},
		{
			name:    "html error page",
			text:    "<html><body>502 Bad Gateway</body></html>",
			wantErr: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseLoad([]byte(tc.text))
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ParseLoad = %+v, want error", got)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseLoad: %v", err)
			}
			if got != tc.want {
				t.Fatalf("ParseLoad = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// --- fleet harness ---------------------------------------------------

// fastClient keeps retry backoffs in the microsecond range.
func fastClient() client.Options {
	return client.Options{
		Retry:          client.Retry{Attempts: 3, Base: time.Millisecond, Max: 5 * time.Millisecond},
		RequestTimeout: 2 * time.Second,
	}
}

func syntheticResult(spec client.JobSpec) *sim.Result {
	return &sim.Result{
		Workload: spec.Workload,
		Protocol: spec.Protocol,
		Cores:    spec.Cores,
		Cycles:   uint64(1000 + len(spec.Workload)),
	}
}

func instantRun(ctx context.Context, spec server.JobSpec) (*sim.Result, error) {
	return syntheticResult(spec), nil
}

// newDaemon builds a real server.Server with the given worker count and
// run stub, optionally wrapping its handler (to garble /metrics).
func newDaemon(t *testing.T, workers int, run func(ctx context.Context, spec server.JobSpec) (*sim.Result, error), wrap func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	srv := server.New(server.Config{Workers: workers, QueueDepth: 64})
	if run != nil {
		srv.SetRunJob(run)
	}
	srv.Start()
	h := http.Handler(srv.Handler())
	if wrap != nil {
		h = wrap(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Drain(ctx) //nolint:errcheck
	})
	return ts
}

func testOptions() Options {
	return Options{
		Client:        fastClient(),
		ProbeInterval: 5 * time.Millisecond,
		Sched: sched.Options{
			CooldownBase: 10 * time.Millisecond,
			CooldownMax:  50 * time.Millisecond,
			MaxAttempts:  4,
		},
	}
}

// runSweep pushes n jobs through the scheduler concurrently and returns
// results indexed by job. Completion is synchronized by the Run calls
// themselves — no sleeps.
// sweepSpec maps a job index onto a real catalog workload (the daemon
// validates specs at submit).
func sweepSpec(i int) client.JobSpec {
	wls := []string{"lu", "radix", "barnes", "water", "x264", "dedup", "ferret", "canneal"}
	// Power-of-two core counts: the arc protocol tiles its directory and
	// rejects counts that do not divide it.
	return client.JobSpec{Workload: wls[i%len(wls)], Protocol: "arc", Cores: 1 << (i % 3)}
}

func runSweep(t *testing.T, s *Scheduler, n int) ([]*sim.Result, []error) {
	t.Helper()
	results := make([]*sim.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := sweepSpec(i)
			cost := sched.EstimateCost(sched.CostInputs{Events: 1000 * (i + 1), Cores: spec.Cores})
			results[i], errs[i] = s.Run(context.Background(), spec, cost, 0)
		}(i)
	}
	wg.Wait()
	return results, errs
}

// --- integration: a real sweep over real daemons ---------------------

// TestFleetSweepCompletes: a heterogeneous sweep over two daemons with
// asymmetric worker counts completes exactly once per job with results
// identical to the stub's canonical output, and the scheduler reaches
// cost-model mode once probes land.
func TestFleetSweepCompletes(t *testing.T) {
	fast := newDaemon(t, 4, instantRun, nil)
	slow := newDaemon(t, 1, instantRun, nil)

	s := New([]string{fast.URL, slow.URL}, testOptions())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	defer s.Stop()

	results, errs := runSweep(t, s, 12)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		want := syntheticResult(sweepSpec(i))
		got := results[i]
		if got == nil || got.Workload != want.Workload || got.Protocol != want.Protocol ||
			got.Cores != want.Cores || got.Cycles != want.Cycles {
			t.Fatalf("job %d result = %+v, want %+v", i, got, want)
		}
	}

	// With both daemons answering /metrics, probes must promote the
	// policy out of degraded mode (bounded poll: probe cadence is
	// milliseconds, and under the race detector a just-taken sample can
	// already be past the default StaleAfter at any single instant).
	deadline := time.Now().Add(5 * time.Second)
	for s.Mode() != sched.ModeCostModel {
		if time.Now().After(deadline) {
			t.Fatalf("Mode = %v after successful probes, want ModeCostModel", s.Mode())
		}
		yield()
	}
	snap := s.Snapshot()
	if snap.Pending != 0 {
		t.Fatalf("Snapshot.Pending = %d after sweep, want 0", snap.Pending)
	}
	for _, e := range snap.Endpoints {
		if e.Queued+e.Running+e.Stealing != 0 {
			t.Fatalf("endpoint %s still has work after sweep: %+v", e.Name, e)
		}
	}
}

// --- fault injection: the load probe must degrade, not wedge ---------

// garbleMetrics serves garbage from /metrics and proxies everything
// else to the real daemon.
func garbleMetrics(body string) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/metrics" {
				fmt.Fprint(w, body)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// TestGarbledMetricsDegradesToRoundRobin: daemons whose /metrics serve
// unparseable or partial text keep the scheduler in round-robin mode,
// and the sweep still completes — a broken probe must never wedge
// dispatch.
func TestGarbledMetricsDegradesToRoundRobin(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"unparseable", "<html>oops</html>"},
		{"partial", "arcsimd_up 1\narcsimd_workers 2\n"}, // no queue_depth
		{"empty", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := newDaemon(t, 2, instantRun, garbleMetrics(tc.body))
			b := newDaemon(t, 2, instantRun, garbleMetrics(tc.body))

			s := New([]string{a.URL, b.URL}, testOptions())
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			s.Start(ctx)
			defer s.Stop()

			results, errs := runSweep(t, s, 8)
			for i, err := range errs {
				if err != nil {
					t.Fatalf("job %d: %v", i, err)
				}
				if results[i] == nil {
					t.Fatalf("job %d: nil result", i)
				}
			}
			if got := s.Mode(); got != sched.ModeRoundRobin {
				t.Fatalf("Mode = %v with garbled /metrics, want ModeRoundRobin", got)
			}
		})
	}
}

// TestStaleProbesDegrade: one daemon's /metrics goes dark after the
// first scrape; once its sample ages past StaleAfter the scheduler
// drops to round-robin rather than planning on fiction, and jobs still
// complete on both endpoints.
func TestStaleProbesDegrade(t *testing.T) {
	var stale sync.Once
	var dark bool
	var mu sync.Mutex
	wrap := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/metrics" {
				mu.Lock()
				d := dark
				stale.Do(func() { dark = true }) // first scrape succeeds, rest hang up
				mu.Unlock()
				if d {
					w.WriteHeader(http.StatusServiceUnavailable)
					return
				}
			}
			next.ServeHTTP(w, r)
		})
	}
	a := newDaemon(t, 2, instantRun, wrap)
	b := newDaemon(t, 2, instantRun, nil)

	opts := testOptions()
	opts.Sched.StaleAfter = 15 * time.Millisecond
	s := New([]string{a.URL, b.URL}, opts)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	defer s.Stop()

	// Wait (bounded) for the stale sample to demote the mode; the tick
	// loop re-evaluates every ProbeInterval.
	deadline := time.Now().Add(5 * time.Second)
	for s.Mode() != sched.ModeRoundRobin {
		if time.Now().After(deadline) {
			t.Fatalf("Mode = %v, never degraded to round-robin on stale probe", s.Mode())
		}
		yield()
	}

	if _, err := s.Run(context.Background(), client.JobSpec{Workload: "swaptions", Protocol: "arc", Cores: 1}, 10, 0); err != nil {
		t.Fatalf("Run in degraded mode: %v", err)
	}
}

// TestAllEndpointsDownFailsFast: with every endpoint refusing
// connections, Run returns client.ErrNoEndpoints instead of blocking —
// the caller's cue to fall back to local execution (same contract as
// client.Pool).
func TestAllEndpointsDownFailsFast(t *testing.T) {
	dead1 := httptest.NewServer(http.NotFoundHandler())
	dead2 := httptest.NewServer(http.NotFoundHandler())
	dead1.Close()
	dead2.Close()

	opts := testOptions()
	opts.Sched.CooldownBase = 100 * time.Millisecond // keep them benched for the whole test
	s := New([]string{dead1.URL, dead2.URL}, opts)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	defer s.Stop()

	runCtx, runCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer runCancel()
	_, err := s.Run(runCtx, client.JobSpec{Workload: "doomed", Protocol: "arc", Cores: 1}, 10, 0)
	if !errors.Is(err, client.ErrNoEndpoints) {
		t.Fatalf("Run with all endpoints down = %v, want ErrNoEndpoints", err)
	}
}

// TestOperatorCancelIsFinal: an operator cancel (no recognized requeue
// reason) surfaces as client.ErrJobCanceled and is not resurrected —
// the PR-4 taxonomy preserved through the scheduler.
func TestOperatorCancelIsFinal(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	started := make(chan string, 1)
	srv := server.New(server.Config{Workers: 1, QueueDepth: 8})
	srv.SetRunJob(func(ctx context.Context, spec server.JobSpec) (*sim.Result, error) {
		once.Do(func() { started <- spec.Workload })
		select {
		case <-release:
			return syntheticResult(spec), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		close(release)
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Drain(ctx) //nolint:errcheck
	})

	s := New([]string{ts.URL}, testOptions())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	defer s.Stop()

	errCh := make(chan error, 1)
	go func() {
		_, err := s.Run(context.Background(), client.JobSpec{Workload: "raytrace", Protocol: "arc", Cores: 1}, 10, 0)
		errCh <- err
	}()
	<-started // the stub is live: the job exists and is running

	// Operator cancel via the raw API (no ?reason): final, not failover.
	c := client.New(ts.URL, fastClient())
	var canceled bool
	deadline := time.Now().Add(5 * time.Second)
	for !canceled && time.Now().Before(deadline) {
		// The remote id is daemon-assigned; find it through the snapshot
		// of running jobs on the daemon side by just canceling everything.
		if err := cancelAllJobs(c); err == nil {
			canceled = true
		}
	}
	if !canceled {
		t.Fatal("could not deliver operator cancel")
	}

	select {
	case err := <-errCh:
		if !errors.Is(err, client.ErrJobCanceled) {
			t.Fatalf("Run after operator cancel = %v, want ErrJobCanceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after operator cancel")
	}
}

// cancelAllJobs cancels every job listed by the daemon.
func cancelAllJobs(c *client.Client) error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	views, err := c.List(ctx)
	if err != nil {
		return err
	}
	any := false
	for _, v := range views {
		if v.State == server.StateRunning || v.State == server.StateQueued {
			if err := c.Cancel(ctx, v.ID); err == nil {
				any = true
			}
		}
	}
	if !any {
		return errors.New("no cancelable jobs yet")
	}
	return nil
}

// TestFleetFailover: a daemon that dies mid-sweep loses its jobs to the
// survivor; every job still completes exactly once with the canonical
// result.
func TestFleetFailover(t *testing.T) {
	var down atomic.Bool
	var killOnce sync.Once
	kill := make(chan struct{})
	release := make(chan struct{})
	flakySrv := server.New(server.Config{Workers: 2, QueueDepth: 64})
	flakySrv.SetRunJob(func(ctx context.Context, spec server.JobSpec) (*sim.Result, error) {
		// The first job this daemon runs triggers its death; the job
		// itself parks until test cleanup (a crashed daemon never
		// reports back).
		killOnce.Do(func() { close(kill) })
		select {
		case <-release:
			return syntheticResult(spec), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	flakySrv.Start()
	// The crash is modeled at the HTTP layer: once down, every request —
	// including SSE reconnects — is refused, exactly like a dead daemon
	// behind a connection-refusing kernel. (Closing the listener instead
	// would let an unluckily-timed SSE reconnect slip in and stream
	// forever against the parked stub.)
	handler := flakySrv.Handler()
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "daemon crashed", http.StatusServiceUnavailable)
			return
		}
		handler.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		close(release)
		flaky.Close()
		dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer dcancel()
		flakySrv.Drain(dctx) //nolint:errcheck
	})

	healthy := newDaemon(t, 2, instantRun, nil)

	opts := testOptions()
	opts.Logf = t.Logf
	s := New([]string{flaky.URL, healthy.URL}, opts)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	defer s.Stop()

	go func() {
		<-kill
		down.Store(true)
		flaky.CloseClientConnections()
	}()

	results, errs := runSweep(t, s, 8)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d after failover: %v", i, err)
		}
		if results[i] == nil {
			t.Fatalf("job %d: nil result", i)
		}
	}
}

// yield briefly parks the polling goroutine between Mode checks (this
// is wall-clock integration territory; the zero-sleep determinism
// mandate lives in simtest, not here).
func yield() { time.Sleep(100 * time.Microsecond) }
