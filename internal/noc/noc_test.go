package noc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeshDims(t *testing.T) {
	tests := []struct{ tiles, w, h int }{
		{1, 1, 1},
		{4, 2, 2},
		{8, 3, 3}, // 8 tiles on a 3x3 grid (one slot unused)
		{16, 4, 4},
		{64, 8, 8},
	}
	for _, tt := range tests {
		m := New(DefaultConfig(tt.tiles))
		w, h := m.Dims()
		if w != tt.w || h != tt.h {
			t.Errorf("tiles=%d: dims %dx%d, want %dx%d", tt.tiles, w, h, tt.w, tt.h)
		}
		if w*h < tt.tiles {
			t.Errorf("tiles=%d: grid too small", tt.tiles)
		}
	}
}

func TestHopsManhattanProperty(t *testing.T) {
	m := New(DefaultConfig(16)) // 4x4
	f := func(sRaw, dRaw uint8) bool {
		s := int(sRaw) % 16
		d := int(dRaw) % 16
		hops := m.Hops(s, d)
		// Symmetry, identity, triangle inequality via 0.
		if m.Hops(d, s) != hops {
			return false
		}
		if s == d && hops != 0 {
			return false
		}
		if s != d && hops == 0 {
			return false
		}
		return hops == abs(s%4-d%4)+abs(s/4-d/4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestHopsTriangleInequality(t *testing.T) {
	m := New(DefaultConfig(64))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a, b, c := rng.Intn(64), rng.Intn(64), rng.Intn(64)
		if m.Hops(a, c) > m.Hops(a, b)+m.Hops(b, c) {
			t.Fatalf("triangle inequality violated: %d %d %d", a, b, c)
		}
	}
}

func TestFlits(t *testing.T) {
	m := New(DefaultConfig(4)) // 16B flits, 8B header
	tests := []struct {
		payload int
		want    uint64
	}{
		{0, 1},   // header only
		{8, 1},   // 16 bytes total
		{9, 2},   // 17 bytes
		{64, 5},  // 72 bytes -> 4.5 -> 5
		{136, 9}, // 64B data + 64B metadata + 8B extra header
	}
	for _, tt := range tests {
		if got := m.Flits(tt.payload); got != tt.want {
			t.Errorf("Flits(%d) = %d, want %d", tt.payload, got, tt.want)
		}
	}
}

func TestSendAccounting(t *testing.T) {
	m := New(DefaultConfig(16))
	lat := m.Send(0, 0, 15, 64) // corner to corner on 4x4: 6 hops
	if m.Stats.Messages != 1 {
		t.Error("message not counted")
	}
	wantFlits := m.Flits(64)
	if m.Stats.Flits != wantFlits {
		t.Errorf("flits = %d, want %d", m.Stats.Flits, wantFlits)
	}
	if m.Stats.FlitHops != wantFlits*6 {
		t.Errorf("flit-hops = %d, want %d", m.Stats.FlitHops, wantFlits*6)
	}
	wantBase := uint64(6)*m.Config().HopLatency + wantFlits - 1
	if lat != wantBase {
		t.Errorf("uncontended latency = %d, want %d", lat, wantBase)
	}
}

func TestLocalDelivery(t *testing.T) {
	m := New(DefaultConfig(16))
	lat := m.Send(0, 5, 5, 64)
	if m.Stats.FlitHops != 0 {
		t.Error("local delivery consumed link bandwidth")
	}
	if lat == 0 || lat > 10 {
		t.Errorf("local latency = %d", lat)
	}
}

func TestContentionRaisesLatency(t *testing.T) {
	cfg := DefaultConfig(16)
	m := New(cfg)
	quiet := m.Send(0, 0, 15, 64)

	// Saturate: inject far more flit-hops than the links can carry for
	// many windows, then measure again.
	now := uint64(0)
	for i := 0; i < 200; i++ {
		now += cfg.Window / 4
		for j := 0; j < 2500; j++ {
			m.Send(now, j%16, (j+7)%16, 64)
		}
	}
	if m.Utilization() <= 0.5 {
		t.Fatalf("utilization = %f, expected heavy load", m.Utilization())
	}
	loaded := m.Send(now, 0, 15, 64)
	if loaded <= quiet {
		t.Errorf("loaded latency %d not above quiet latency %d", loaded, quiet)
	}
	// And the cap must hold.
	maxLat := quiet + uint64(cfg.MaxQueueFactor*float64(quiet)) + 1
	if loaded > maxLat {
		t.Errorf("loaded latency %d exceeds cap %d", loaded, maxLat)
	}
	if m.PeakUtilization() < m.Utilization()-1e-9 {
		t.Error("peak utilization below current utilization")
	}
}

func TestUtilizationDecays(t *testing.T) {
	cfg := DefaultConfig(16)
	m := New(cfg)
	// Load one window heavily.
	for j := 0; j < 2000; j++ {
		m.Send(10, j%16, (j+5)%16, 64)
	}
	// Then stay idle for many windows; utilization must decay.
	m.Send(cfg.Window*20, 0, 1, 0)
	high := m.Utilization()
	m.Send(cfg.Window*40, 0, 1, 0)
	if m.Utilization() >= high && high > 0 {
		t.Errorf("utilization did not decay: %f -> %f", high, m.Utilization())
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Tiles: 0, FlitBytes: 16, Window: 100, MaxQueueFactor: 2},
		{Tiles: 4, FlitBytes: 0, Window: 100, MaxQueueFactor: 2},
		{Tiles: 4, FlitBytes: 16, Window: 0, MaxQueueFactor: 2},
		{Tiles: 4, FlitBytes: 16, Window: 100, MaxQueueFactor: 0.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSingleTileMesh(t *testing.T) {
	m := New(DefaultConfig(1))
	lat := m.Send(0, 0, 0, 64)
	if lat == 0 {
		t.Error("zero latency")
	}
	if m.Stats.FlitHops != 0 {
		t.Error("flit-hops on single-tile mesh")
	}
}

// refWindow replicates the pre-fast-forward observe: close idle windows
// one loop iteration per window. It is the bit-exact reference the O(1)
// fast-forward must match.
type refWindow struct {
	winStart    uint64
	winFlitHops uint64
	util        float64
	peakUtil    float64
}

func (r *refWindow) observe(cfg Config, links float64, now, fh uint64) {
	for now >= r.winStart+cfg.Window {
		inst := float64(r.winFlitHops) / (float64(cfg.Window) * links)
		r.util = 0.5*r.util + 0.5*inst
		if r.util > r.peakUtil {
			r.peakUtil = r.util
		}
		r.winFlitHops = 0
		r.winStart += cfg.Window
	}
	r.winFlitHops += fh
}

// TestObserveFastForwardMatchesLoop drives the O(1) observe and the loop
// reference through identical schedules — bursts, single-window steps,
// and quiet gaps up to thousands of windows — asserting bit-identical
// util, peakUtil, and window state after every message.
func TestObserveFastForwardMatchesLoop(t *testing.T) {
	cfg := DefaultConfig(16)
	m := New(cfg)
	ref := refWindow{}
	rng := rand.New(rand.NewSource(42))
	now := uint64(0)
	for i := 0; i < 5000; i++ {
		switch rng.Intn(4) {
		case 0: // same window
			now += rng.Uint64() % (cfg.Window / 4)
		case 1: // next window or two
			now += cfg.Window + rng.Uint64()%cfg.Window
		case 2: // medium gap
			now += cfg.Window * (2 + rng.Uint64()%50)
		case 3: // long quiet gap (decays to ~0)
			now += cfg.Window * (100 + rng.Uint64()%5000)
		}
		fh := rng.Uint64() % 40000
		m.observe(now, fh)
		ref.observe(cfg, m.links, now, fh)
		if m.util != ref.util || m.peakUtil != ref.peakUtil {
			t.Fatalf("step %d (now=%d): util %v/%v, want %v/%v",
				i, now, m.util, m.peakUtil, ref.util, ref.peakUtil)
		}
		if m.winStart != ref.winStart || m.winFlitHops != ref.winFlitHops {
			t.Fatalf("step %d (now=%d): window state (%d,%d), want (%d,%d)",
				i, now, m.winStart, m.winFlitHops, ref.winStart, ref.winFlitHops)
		}
	}
}

// TestObserveAstronomicalGap: a gap of ~2^40 windows (which the loop
// version would take hours to close) completes instantly and fully
// decays utilization to zero without disturbing the peak.
func TestObserveAstronomicalGap(t *testing.T) {
	cfg := DefaultConfig(64)
	m := New(cfg)
	for j := 0; j < 5000; j++ {
		m.observe(uint64(j), 500)
	}
	m.observe(cfg.Window*3, 1) // close the loaded window, establish util
	if m.Utilization() == 0 {
		t.Fatal("expected nonzero utilization after a loaded window")
	}
	peak := m.PeakUtilization()
	m.observe(cfg.Window*(1<<40), 1)
	if got := m.Utilization(); got != 0 {
		t.Errorf("util after 2^40-window gap = %v, want exact 0", got)
	}
	if m.PeakUtilization() != peak {
		t.Errorf("peak changed across an idle gap: %v -> %v", peak, m.PeakUtilization())
	}
}
