// Package noc models the on-chip interconnect: a 2D mesh with XY routing,
// wormhole-style serialization, and a utilization-based contention model.
// The mesh does not simulate individual flits hop by hop; it accounts
// flit-hops exactly (which drives traffic figures and energy) and derives
// queueing delay from smoothed link utilization (which produces the
// saturation behaviour the paper reports for CE+ at high core counts).
package noc

import (
	"fmt"
	"math"
)

// HeaderBytes is the per-message routing/command overhead added to every
// payload.
const HeaderBytes = 8

// Config sizes the mesh.
type Config struct {
	// Tiles is the number of mesh nodes; one tile hosts one core plus
	// one LLC slice. Rounded up to a rectangle (near-square).
	Tiles int
	// FlitBytes is the link width; a message of n bytes occupies
	// ceil((n+HeaderBytes)/FlitBytes) flits.
	FlitBytes int
	// HopLatency is the per-hop router+link traversal latency, cycles.
	HopLatency uint64
	// LocalLatency is the latency of a message that stays on its tile.
	LocalLatency uint64
	// Window is the utilization-averaging window in cycles.
	Window uint64
	// MaxQueueFactor caps the contention multiplier (the "saturated"
	// latency is MaxQueueFactor x the uncontended latency).
	MaxQueueFactor float64
}

// DefaultConfig returns the mesh parameters used across the evaluation
// (documented in Table T1).
func DefaultConfig(tiles int) Config {
	return Config{
		Tiles:          tiles,
		FlitBytes:      16,
		HopLatency:     3,
		LocalLatency:   1,
		Window:         2048,
		MaxQueueFactor: 24,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Tiles <= 0 {
		return fmt.Errorf("noc: need at least one tile, got %d", c.Tiles)
	}
	if c.FlitBytes <= 0 {
		return fmt.Errorf("noc: flit width %d invalid", c.FlitBytes)
	}
	if c.Window == 0 {
		return fmt.Errorf("noc: zero utilization window")
	}
	if c.MaxQueueFactor < 1 {
		return fmt.Errorf("noc: MaxQueueFactor %f < 1", c.MaxQueueFactor)
	}
	return nil
}

// Stats is the cumulative traffic accounting.
type Stats struct {
	Messages uint64
	// Flits is the total number of flits injected.
	Flits uint64
	// FlitHops is flits weighted by hops traversed — the paper's
	// on-chip traffic metric and the quantity NoC energy scales with.
	FlitHops uint64
	// Bytes is total payload+header bytes.
	Bytes uint64
	// QueueCycles is the total added contention delay.
	QueueCycles uint64
}

// Mesh is the interconnect model. Not safe for concurrent use.
type Mesh struct {
	cfg  Config
	w, h int
	// links is the effective channel capacity the contention model
	// divides by: the mesh's bisection channels (4*min(w,h) directed
	// links, both cut orientations averaged), not the aggregate link
	// count. Bisection bandwidth grows only as sqrt(tiles) while
	// traffic grows with tiles — the saturation mechanism the paper's
	// CE+ results hinge on.
	links float64

	// utilization tracking
	winStart    uint64
	winFlitHops uint64
	util        float64 // smoothed flit-hops per link-cycle, 0..~1+
	peakUtil    float64

	Stats Stats
}

// New builds a mesh; it panics on invalid configuration.
func New(cfg Config) *Mesh {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	w := 1
	for w*w < cfg.Tiles {
		w++
	}
	h := (cfg.Tiles + w - 1) / w
	m := &Mesh{cfg: cfg, w: w, h: h}
	short := w
	if h < short {
		short = h
	}
	m.links = float64(4 * short)
	return m
}

// Config returns the mesh configuration.
func (m *Mesh) Config() Config { return m.cfg }

// Dims returns the mesh width and height.
func (m *Mesh) Dims() (w, h int) { return m.w, m.h }

// coord returns tile t's mesh coordinates.
func (m *Mesh) coord(t int) (x, y int) { return t % m.w, t / m.w }

// Hops returns the XY-routing hop count between two tiles (the Manhattan
// distance).
func (m *Mesh) Hops(src, dst int) int {
	sx, sy := m.coord(src)
	dx, dy := m.coord(dst)
	return abs(sx-dx) + abs(sy-dy)
}

// Flits returns the flit count of a message with the given payload.
func (m *Mesh) Flits(payloadBytes int) uint64 {
	total := payloadBytes + HeaderBytes
	f := (total + m.cfg.FlitBytes - 1) / m.cfg.FlitBytes
	if f < 1 {
		f = 1
	}
	return uint64(f)
}

// Send models one message from src to dst injected at cycle now and
// returns its delivery latency. Traffic accounting (flit-hops, bytes) and
// utilization tracking are updated as side effects.
func (m *Mesh) Send(now uint64, src, dst, payloadBytes int) uint64 {
	flits := m.Flits(payloadBytes)
	hops := m.Hops(src, dst)

	m.Stats.Messages++
	m.Stats.Flits += flits
	m.Stats.Bytes += uint64(payloadBytes + HeaderBytes)

	if hops == 0 {
		// Same-tile delivery: no link traversal, no contention.
		return m.cfg.LocalLatency + flits - 1
	}

	fh := flits * uint64(hops)
	m.Stats.FlitHops += fh
	m.observe(now, fh)

	base := uint64(hops)*m.cfg.HopLatency + (flits - 1)
	queue := m.queueDelay(base)
	m.Stats.QueueCycles += queue
	return base + queue
}

// observe folds fh flit-hops injected at cycle now into the utilization
// window. Calls must have non-decreasing now (the simulator processes
// events in global time order). A message after a long quiet gap closes
// all elapsed windows in O(1): only the first close can carry flit-hops,
// and every further close halves util (0.5*util + 0.5*0), so the decay
// fast-forwards as util * 0.5^k instead of one iteration per window.
func (m *Mesh) observe(now uint64, fh uint64) {
	if now >= m.winStart+m.cfg.Window {
		// Close the current window and decay it into the smoothed
		// estimate — the only close whose instantaneous term is nonzero,
		// and therefore the only one that can raise the peak.
		inst := float64(m.winFlitHops) / (float64(m.cfg.Window) * m.links)
		m.util = 0.5*m.util + 0.5*inst
		if m.util > m.peakUtil {
			m.peakUtil = m.util
		}
		m.winFlitHops = 0
		elapsed := (now - m.winStart) / m.cfg.Window
		m.winStart += elapsed * m.cfg.Window
		m.halve(elapsed - 1)
	}
	m.winFlitHops += fh
}

// halve applies k exact halvings to util without looping k times. While
// the result stays a normal float64 a single Ldexp is bit-identical to k
// repeated halvings (both are exact); in the subnormal tail each halving
// rounds, so the remainder is looped — at most ~54 steps before util
// reaches 0, a constant bound independent of k.
func (m *Mesh) halve(k uint64) {
	if k == 0 || m.util == 0 {
		return
	}
	// util = f*2^exp with f in [0.5,1): after d halvings the value is
	// still normal (>= 2^-1022 even at f=0.5) while d <= exp+1021.
	_, exp := math.Frexp(m.util)
	if drop := int64(exp) + 1021; drop > 0 {
		if uint64(drop) >= k {
			m.util = math.Ldexp(m.util, -int(k))
			return
		}
		m.util = math.Ldexp(m.util, -int(drop))
		k -= uint64(drop)
	}
	if k >= 60 {
		// From the edge of the normal range, at most ~54 further
		// halvings round to exact 0; skip the (slow) denormal ops.
		m.util = 0
		return
	}
	for ; k > 0 && m.util != 0; k-- {
		m.util *= 0.5
	}
}

// Fence resets the utilization tracking to an idle state starting at
// cycle now: the partial window's flit-hops are discarded (not folded
// into the smoothed estimate) and the smoothed utilization drops to
// zero, while cumulative Stats and the observed peak are kept.
//
// The simulator calls this at every barrier release, making the
// contention state after a barrier a pure function of post-barrier
// traffic — which is what lets phases whose footprints are disjoint be
// simulated independently and stitched bit-exactly (see internal/sim).
// Physically this models the barrier's global quiesce: every in-flight
// message has drained before any thread resumes.
func (m *Mesh) Fence(now uint64) {
	m.winFlitHops = 0
	m.util = 0
	m.winStart = now
}

// Reset returns the mesh to its freshly-built state: utilization
// tracking idle at cycle 0, peak cleared, Stats zeroed. Machine pooling
// uses it between runs; Fence is the in-run variant that keeps Stats.
func (m *Mesh) Reset() {
	m.winStart = 0
	m.winFlitHops = 0
	m.util = 0
	m.peakUtil = 0
	m.Stats = Stats{}
}

// queueDelay converts current utilization into added delay for a message
// with the given uncontended latency, using an M/D/1-style rho/(1-rho)
// shape capped at MaxQueueFactor.
func (m *Mesh) queueDelay(base uint64) uint64 {
	rho := m.util
	if rho <= 0 {
		return 0
	}
	var factor float64
	if rho >= 1 {
		factor = m.cfg.MaxQueueFactor
	} else {
		factor = rho / (1 - rho)
		if factor > m.cfg.MaxQueueFactor {
			factor = m.cfg.MaxQueueFactor
		}
	}
	return uint64(math.Round(factor * float64(base)))
}

// Utilization returns the smoothed link utilization (flit-hops per
// link-cycle), the quantity the contention model is driven by.
func (m *Mesh) Utilization() float64 { return m.util }

// PeakUtilization returns the highest smoothed utilization observed.
func (m *Mesh) PeakUtilization() float64 { return m.peakUtil }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
