package noc

import "testing"

func BenchmarkSend(b *testing.B) {
	m := New(DefaultConfig(64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(uint64(i), i&63, (i*7)&63, 64)
	}
}

func BenchmarkHops(b *testing.B) {
	m := New(DefaultConfig(64))
	var sum int
	for i := 0; i < b.N; i++ {
		sum += m.Hops(i&63, (i*13)&63)
	}
	_ = sum
}

// BenchmarkObserveLongGap measures observe when every message lands
// ~2^29 windows after the previous one. The per-window loop made this
// O(gap/Window) per message; the fast-forward must keep it constant.
func BenchmarkObserveLongGap(b *testing.B) {
	m := New(DefaultConfig(64))
	now := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 1 << 40
		m.observe(now, 8)
	}
}

// BenchmarkObserveDense is the no-gap baseline for comparison.
func BenchmarkObserveDense(b *testing.B) {
	m := New(DefaultConfig(64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.observe(uint64(i), 8)
	}
}
