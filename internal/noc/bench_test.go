package noc

import "testing"

func BenchmarkSend(b *testing.B) {
	m := New(DefaultConfig(64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(uint64(i), i&63, (i*7)&63, 64)
	}
}

func BenchmarkHops(b *testing.B) {
	m := New(DefaultConfig(64))
	var sum int
	for i := 0; i < b.N; i++ {
		sum += m.Hops(i&63, (i*13)&63)
	}
	_ = sum
}
