package coherence

import (
	"math/rand"
	"testing"

	"arcsim/internal/aim"
	"arcsim/internal/core"
	"arcsim/internal/machine"
)

// tiny builds a deliberately small machine so tests can force evictions.
func tiny(cores int) *machine.Machine {
	cfg := machine.Default(cores)
	cfg.L1SizeBytes = 8 * core.LineSize // 4 sets x 2 ways
	cfg.L1Ways = 2
	cfg.LLCSliceBytes = 32 * core.LineSize // 16 sets x 2 ways
	cfg.LLCWays = 2
	cfg.AIM = aim.Config{} // disabled; MESI needs none
	return machine.New(cfg)
}

func rd(a core.Addr) core.Access { return core.Access{Kind: core.Read, Addr: a, Size: 8} }
func wrAcc(a core.Addr) core.Access {
	return core.Access{Kind: core.Write, Addr: a, Size: 8}
}

func TestColdReadGetsExclusive(t *testing.T) {
	m := tiny(2)
	e := New(m)
	e.Access(0, 0, rd(0x1000))
	l := m.L1[0].Peek(core.LineOf(0x1000))
	if l == nil || l.State != StateE {
		t.Fatalf("state = %v, want E", l)
	}
	if !e.Trace.LLCMiss {
		t.Error("cold miss did not reach memory")
	}
	if m.Mem.Stats.Reads != 1 {
		t.Errorf("DRAM reads = %d", m.Mem.Stats.Reads)
	}
}

func TestSilentEToM(t *testing.T) {
	m := tiny(2)
	e := New(m)
	e.Access(0, 0, rd(0x1000))
	msgs := m.Mesh.Stats.Messages
	e.Access(10, 0, wrAcc(0x1000))
	if m.Mesh.Stats.Messages != msgs {
		t.Error("E->M transition generated traffic")
	}
	l := m.L1[0].Peek(core.LineOf(0x1000))
	if l.State != StateM || !l.Dirty {
		t.Errorf("state = %s dirty=%v", StateName(l.State), l.Dirty)
	}
}

func TestReadSharingDowngradesOwner(t *testing.T) {
	m := tiny(2)
	e := New(m)
	e.Access(0, 0, wrAcc(0x1000)) // core 0: M
	e.Access(10, 1, rd(0x1000))   // core 1 reads: intervention
	l0 := m.L1[0].Peek(core.LineOf(0x1000))
	l1 := m.L1[1].Peek(core.LineOf(0x1000))
	if l0 == nil || l0.State != StateS {
		t.Errorf("owner not downgraded: %v", l0)
	}
	if l1 == nil || l1.State != StateS {
		t.Errorf("requester state: %v", l1)
	}
	if len(e.Trace.Remote) != 1 || e.Trace.Remote[0].Invalidated {
		t.Errorf("trace remote = %+v", e.Trace.Remote)
	}
	if !e.Trace.Remote[0].Snapshot.Dirty {
		t.Error("snapshot lost dirty bit")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	m := tiny(4)
	e := New(m)
	for c := core.CoreID(0); c < 3; c++ {
		e.Access(uint64(c)*10, c, rd(0x2000))
	}
	e.Access(100, 3, wrAcc(0x2000))
	for c := 0; c < 3; c++ {
		if m.L1[c].Peek(core.LineOf(0x2000)) != nil {
			t.Errorf("core %d still holds the line", c)
		}
	}
	l3 := m.L1[3].Peek(core.LineOf(0x2000))
	if l3 == nil || l3.State != StateM {
		t.Fatalf("writer state = %v", l3)
	}
	if len(e.Trace.Remote) != 3 {
		t.Errorf("trace captured %d remote copies, want 3", len(e.Trace.Remote))
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestUpgradeFromShared(t *testing.T) {
	m := tiny(2)
	e := New(m)
	e.Access(0, 0, rd(0x3000))
	e.Access(10, 1, rd(0x3000)) // both S
	e.Access(20, 0, wrAcc(0x3000))
	if !e.Trace.L1Hit || !e.Trace.Upgrade {
		t.Errorf("upgrade not traced: %+v", e.Trace)
	}
	if m.L1[1].Peek(core.LineOf(0x3000)) != nil {
		t.Error("sharer survived upgrade")
	}
	if m.Counter("mesi.upgrades") != 1 {
		t.Error("upgrade not counted")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestHitFasterThanMiss(t *testing.T) {
	m := tiny(2)
	e := New(m)
	missLat := e.Access(0, 0, rd(0x4000))
	hitLat := e.Access(10, 0, rd(0x4000))
	if hitLat >= missLat {
		t.Errorf("hit latency %d >= miss latency %d", hitLat, missLat)
	}
}

func TestDirtyL1EvictionWritesBack(t *testing.T) {
	m := tiny(2)
	e := New(m)
	// L1 has 4 sets x 2 ways; lines 0, 4, 8 (x64B) map to set 0.
	e.Access(0, 0, wrAcc(0x0))
	e.Access(10, 0, rd(4*64))
	e.Access(20, 0, rd(8*64)) // evicts line 0 (dirty)
	if !e.Trace.L1Evicted || e.Trace.L1Victim.Tag != 0 {
		t.Fatalf("eviction not traced: %+v", e.Trace)
	}
	if m.Counter("mesi.l1_writebacks") != 1 {
		t.Error("dirty eviction did not write back")
	}
	// LLC copy must now be dirty and ownerless.
	dir := m.LLC[m.HomeTile(0)].Peek(0)
	if dir == nil || !dir.Dirty || dir.Owner != -1 {
		t.Errorf("LLC state after writeback: %+v", dir)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInclusionEvictionRecallsL1Copies(t *testing.T) {
	m := tiny(1)
	e := New(m)
	// Home slice 0 (single core): 16 sets x 2 ways, hashed index. Find
	// three lines that collide in one LLC set but in different L1 sets
	// (so only the LLC overflows).
	target := m.LLC[0].SetIndex(0)
	lines := []core.Line{0}
	for l := core.Line(1); len(lines) < 3; l++ {
		if m.LLC[0].SetIndex(l) != target {
			continue
		}
		distinctL1 := true
		for _, prev := range lines {
			if m.L1[0].SetIndex(l) == m.L1[0].SetIndex(prev) {
				distinctL1 = false
				break
			}
		}
		if distinctL1 {
			lines = append(lines, l)
		}
	}
	for i, l := range lines {
		e.Access(uint64(i)*10, 0, rd(l.Base()))
	}
	if !e.Trace.InclusionEvicted {
		t.Fatalf("no inclusion eviction: %+v", e.Trace)
	}
	if m.L1[0].Peek(e.Trace.InclusionVictimLine) != nil {
		t.Error("L1 copy survived LLC eviction (inclusion broken)")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestStaleOwnerRecovery(t *testing.T) {
	m := tiny(2)
	e := New(m)
	e.Access(0, 0, rd(0x5000)) // core 0: E
	// Silently evict core 0's copy by filling its L1 set (set index of
	// 0x5000/64 = line 0x140 -> set 0; same-set lines differ by 4 lines).
	base := core.LineOf(0x5000)
	e.Access(10, 0, rd((base + 4).Base()))
	e.Access(20, 0, rd((base + 8).Base())) // clean eviction of 0x5000, silent
	if m.L1[0].Peek(base) != nil {
		t.Fatal("test setup: line still resident")
	}
	// Core 1 reads: directory still thinks core 0 owns it.
	e.Access(30, 1, rd(0x5000))
	if m.Counter("mesi.stale_owner") != 1 {
		t.Error("stale owner path not exercised")
	}
	l1 := m.L1[1].Peek(base)
	if l1 == nil {
		t.Fatal("requester did not get the line")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestSWMRUnderRandomStress drives random accesses from several cores and
// checks the protocol invariants after every single access.
func TestSWMRUnderRandomStress(t *testing.T) {
	m := tiny(4)
	e := New(m)
	rng := rand.New(rand.NewSource(31))
	now := uint64(0)
	for i := 0; i < 3000; i++ {
		c := core.CoreID(rng.Intn(4))
		addr := core.Addr(rng.Intn(64)) * 8 * 4 // pool of lines incl. set conflicts
		var acc core.Access
		if rng.Intn(2) == 0 {
			acc = rd(addr)
		} else {
			acc = wrAcc(addr)
		}
		now += e.Access(now, c, acc)
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("step %d (%v by core %d): %v", i, acc, c, err)
		}
	}
	if m.Mesh.Stats.Messages == 0 || m.Mem.Stats.Reads == 0 {
		t.Error("stress test produced no traffic")
	}
}

func TestTrafficScalesWithSharing(t *testing.T) {
	// Ping-pong writes between two cores must cost far more messages
	// than repeated private writes.
	mPriv := tiny(2)
	ePriv := New(mPriv)
	for i := 0; i < 100; i++ {
		ePriv.Access(uint64(i)*10, 0, wrAcc(0x100))
	}
	mShare := tiny(2)
	eShare := New(mShare)
	for i := 0; i < 100; i++ {
		eShare.Access(uint64(i)*10, core.CoreID(i%2), wrAcc(0x100))
	}
	if mShare.Mesh.Stats.Messages < 10*mPriv.Mesh.Stats.Messages {
		t.Errorf("sharing traffic %d not >> private traffic %d",
			mShare.Mesh.Stats.Messages, mPriv.Mesh.Stats.Messages)
	}
}

func TestBoundaryIsFree(t *testing.T) {
	m := tiny(2)
	e := New(m)
	if lat := e.Boundary(0, 0); lat != 0 {
		t.Errorf("MESI boundary latency = %d", lat)
	}
	if e.Name() != "mesi" {
		t.Errorf("name = %q", e.Name())
	}
}
