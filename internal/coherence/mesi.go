// Package coherence implements the eager write-invalidation MESI directory
// protocol that the paper's baseline machine and the CE/CE+ designs run
// on. The directory is embedded in the LLC slices (one slice per tile,
// address-interleaved homes); the LLC is inclusive of the L1s.
//
// Engine.Access both performs the protocol transition and records an
// AccessTrace describing everything that happened (remote copies touched,
// evictions, LLC misses). The Conflict Exceptions layer (internal/ce)
// consumes the trace to move metadata and detect conflicts without
// re-implementing MESI.
package coherence

import (
	"fmt"

	"arcsim/internal/cache"
	"arcsim/internal/core"
	"arcsim/internal/machine"
)

// L1 line states. Absence from the cache is Invalid.
const (
	// StateS: shared, clean, possibly other copies.
	StateS uint8 = iota + 1
	// StateE: exclusive, clean.
	StateE
	// StateM: exclusive, dirty.
	StateM
	// StateO: owned — dirty but shared (MOESI only): this copy supplies
	// data to readers without writing the LLC back.
	StateO
)

// StateName renders an L1 state for diagnostics.
func StateName(s uint8) string {
	switch s {
	case StateS:
		return "S"
	case StateE:
		return "E"
	case StateM:
		return "M"
	case StateO:
		return "O"
	}
	return fmt.Sprintf("?%d", s)
}

// Pre-interned counter IDs: the hot loop bumps integer slots, never a
// map (see machine.RegisterCounter).
var (
	ctrMesiUpgrades           = machine.RegisterCounter("mesi.upgrades")
	ctrMesiInvalidations      = machine.RegisterCounter("mesi.invalidations")
	ctrMesiInclusionInvals    = machine.RegisterCounter("mesi.inclusion_invalidations")
	ctrMesiLLCEvictions       = machine.RegisterCounter("mesi.llc_evictions")
	ctrMesiStaleOwner         = machine.RegisterCounter("mesi.stale_owner")
	ctrMesiOwnerWritebacks    = machine.RegisterCounter("mesi.owner_writebacks")
	ctrMesiOwnedRetains       = machine.RegisterCounter("mesi.owned_retains")
	ctrMesiInterventions      = machine.RegisterCounter("mesi.interventions")
	ctrMesiSilentEvictions    = machine.RegisterCounter("mesi.silent_evictions")
	ctrMesiL1Writebacks       = machine.RegisterCounter("mesi.l1_writebacks")
	ctrMesiInclusionAnomalies = machine.RegisterCounter("mesi.inclusion_anomalies")
)

// RemoteCopy is a snapshot of another core's L1 line that the current
// transaction invalidated or downgraded, taken before the action. The CE
// layer reads the snapshot's access bits.
type RemoteCopy struct {
	Core core.CoreID
	// Snapshot is the line as it was before invalidation/downgrade.
	Snapshot cache.Line
	// Invalidated reports whether the copy was removed (true) or
	// downgraded to S (false).
	Invalidated bool
}

// AccessTrace describes one Access transaction for layered designs.
type AccessTrace struct {
	Line core.Line
	Home int
	// L1Hit: the access completed from the local L1 (including S-state
	// write upgrades, which set Upgrade too).
	L1Hit bool
	// Upgrade: a write hit an S-state line and consulted the directory.
	Upgrade bool
	// Remote lists the copies this transaction invalidated/downgraded
	// (at other cores), excluding inclusion-victim invalidations.
	Remote []RemoteCopy
	// L1Evicted/L1Victim describe the local fill victim.
	L1Evicted bool
	L1Victim  cache.Line
	// LLCMiss: the home slice missed and fetched the line from memory.
	LLCMiss bool
	// InclusionVictims are L1 copies (any core) invalidated because the
	// LLC evicted their line to make room.
	InclusionVictims []RemoteCopy
	// InclusionVictimLine is the line the LLC evicted, if any.
	InclusionEvicted    bool
	InclusionVictimLine core.Line
}

// DirectoryInvolved reports whether the transaction consulted the home
// directory (miss or upgrade) — the moments CE piggybacks metadata on.
func (t *AccessTrace) DirectoryInvolved() bool { return !t.L1Hit || t.Upgrade }

func (t *AccessTrace) reset(line core.Line, home int) {
	t.Line = line
	t.Home = home
	t.L1Hit = false
	t.Upgrade = false
	t.Remote = t.Remote[:0]
	t.L1Evicted = false
	t.L1Victim = cache.Line{}
	t.LLCMiss = false
	t.InclusionVictims = t.InclusionVictims[:0]
	t.InclusionEvicted = false
	t.InclusionVictimLine = 0
}

// Engine is the MESI protocol engine; it implements machine.Protocol and
// is the baseline design ("mesi") of the evaluation.
type Engine struct {
	M *machine.Machine
	// MetaTax is added to the payload of every data response,
	// invalidation acknowledgement, and writeback. The CE layer sets it
	// to the access-bits record size: in Conflict Exceptions the bits
	// are part of the line state and travel with every coherence
	// message. Zero for the plain MESI baseline.
	MetaTax int
	// UseOwned enables the MOESI Owned state: an exclusive dirty holder
	// answering a read keeps the dirty line (O) and supplies data
	// cache-to-cache, avoiding the LLC writeback that plain MESI pays
	// on every M->S downgrade.
	UseOwned bool
	// Trace is the trace of the most recent Access call. It is a reused
	// buffer: layered designs must consume it before the next Access.
	Trace AccessTrace

	// invHolders is reusable scratch for CheckInvariants, which the
	// conformance suite calls after every simulated event; rebuilding
	// the table per call dominated that suite's wall time.
	invHolders map[core.Line][]invHolder
}

// invHolder records one L1 copy of a line for invariant checking.
type invHolder struct {
	core  int
	state uint8
}

// New builds an engine over m.
func New(m *machine.Machine) *Engine { return &Engine{M: m} }

// Reset returns the engine to its freshly-built state so a pooled
// machine+engine pair can be reused across runs. All protocol state
// lives in the machine's caches (which Machine.Reset clears); only the
// reused trace buffer needs clearing here.
func (e *Engine) Reset() { e.Trace.reset(0, 0) }

// Name implements machine.Protocol.
func (e *Engine) Name() string {
	if e.UseOwned {
		return "moesi"
	}
	return "mesi"
}

// Boundary implements machine.Protocol. Plain MESI does no region work.
func (e *Engine) Boundary(now uint64, c core.CoreID) uint64 { return 0 }

// Access implements machine.Protocol.
func (e *Engine) Access(now uint64, c core.CoreID, acc core.Access) uint64 {
	m := e.M
	r := int(c)
	line := acc.Line()
	home := m.HomeTile(line)
	e.Trace.reset(line, home)

	lat := m.L1Tick(c)
	l1 := m.L1[r].Lookup(line)
	if l1 != nil {
		e.Trace.L1Hit = true
		if acc.Kind == core.Read || l1.State == StateE || l1.State == StateM {
			// Read hit in any state; write hit in E/M. E->M is silent.
			// (O behaves like S for writes: ownership of a *shared*
			// dirty line does not confer write permission.)
			if acc.Kind == core.Write {
				l1.State = StateM
				l1.Dirty = true
			}
			return lat
		}
		// Write hit in S: upgrade through the directory.
		e.Trace.Upgrade = true
		lat += e.upgrade(now+lat, c, line, home, l1)
		return lat
	}

	// L1 miss: fetch through the home directory.
	lat += e.fetch(now+lat, c, acc, line, home)
	return lat
}

// upgrade handles a write hit on an S line: invalidate the other sharers
// and take ownership.
func (e *Engine) upgrade(now uint64, c core.CoreID, line core.Line, home int, l1 *cache.Line) uint64 {
	m := e.M
	r := int(c)
	lat := m.Send(now, r, home, machine.CtrlBytes) // UpgradeReq
	lat += m.LLCTick(home)

	dir := m.LLC[home].Peek(line)
	if dir == nil {
		// Inclusion guarantees a directory entry for any S copy.
		panic(fmt.Sprintf("coherence: S copy of %#x with no directory entry", uint64(line)))
	}
	lat += e.invalidateSharers(now+lat, c, line, home, dir)
	dir.Sharers = 1 << uint(r)
	dir.Owner = int16(r)
	l1.State = StateM
	l1.Dirty = true
	m.IncID(ctrMesiUpgrades, 1)
	return lat
}

// invalidateSharers sends invalidations to every sharer other than the
// requester and collects their acks; it returns the added latency (the
// slowest invalidation leg) and appends snapshots to the trace.
func (e *Engine) invalidateSharers(now uint64, c core.CoreID, line core.Line, home int, dir *cache.Line) uint64 {
	m := e.M
	r := int(c)
	var worst uint64
	for o := 0; o < m.Cfg.Cores; o++ {
		if o == r || dir.Sharers&(1<<uint(o)) == 0 {
			continue
		}
		legA := m.Send(now, home, o, machine.CtrlBytes)             // Inv
		legB := m.Send(now+legA, o, r, machine.CtrlBytes+e.MetaTax) // InvAck carries bits
		if legA+legB > worst {
			worst = legA + legB
		}
		m.IncID(ctrMesiInvalidations, 1)
		if ol, ok := m.L1[o].Invalidate(line); ok {
			e.Trace.Remote = append(e.Trace.Remote, RemoteCopy{
				Core: core.CoreID(o), Snapshot: ol, Invalidated: true,
			})
		}
	}
	return worst
}

// fetch handles an L1 miss (GetS for reads, GetM for writes).
func (e *Engine) fetch(now uint64, c core.CoreID, acc core.Access, line core.Line, home int) uint64 {
	m := e.M
	r := int(c)
	write := acc.Kind == core.Write

	lat := m.Send(now, r, home, machine.CtrlBytes) // GetS/GetM
	lat += m.LLCTick(home)

	dir := m.LLC[home].Lookup(line)
	dataSupplied := false
	if dir == nil {
		dir, lat = e.llcFill(now+lat, line, home, lat)
	} else {
		// Owner intervention: fetch the line from the exclusive holder.
		if dir.Owner != cache.NoOwner && int(dir.Owner) != r {
			suppLat, supplied := e.ownerIntervention(now+lat, c, line, home, dir, write)
			lat += suppLat
			dataSupplied = supplied
		}
		if write {
			lat += e.invalidateSharers(now+lat, c, line, home, dir)
		}
	}

	// Data response from home if the owner did not supply it.
	if !dataSupplied {
		lat += m.Send(now+lat, home, r, machine.DataBytes+e.MetaTax)
	}

	// Directory update and local fill.
	var newState uint8
	if write {
		dir.Sharers = 1 << uint(r)
		dir.Owner = int16(r)
		newState = StateM
	} else {
		switch {
		case dir.Sharers == 0 && dir.Owner == cache.NoOwner:
			dir.Owner = int16(r) // exclusive clean grant
			dir.Sharers = 1 << uint(r)
			newState = StateE
		case e.UseOwned && dir.Owner != cache.NoOwner && int(dir.Owner) != r:
			// MOESI: the previous owner retained the line in O.
			dir.Sharers |= 1 << uint(r)
			newState = StateS
		default:
			dir.Sharers |= 1 << uint(r)
			dir.Owner = cache.NoOwner
			newState = StateS
		}
	}

	slot, victim, evicted := m.L1[r].Insert(line)
	if evicted {
		e.Trace.L1Evicted = true
		e.Trace.L1Victim = victim
		e.writebackVictim(now+lat, r, victim)
	}
	slot.State = newState
	slot.Dirty = write
	return lat
}

// llcFill allocates the line at the home slice, handling the inclusive
// eviction of the victim, and fetches data from memory.
func (e *Engine) llcFill(now uint64, line core.Line, home int, lat0 uint64) (*cache.Line, uint64) {
	m := e.M
	e.Trace.LLCMiss = true
	lat := lat0

	slot, victim, evicted := m.LLC[home].Insert(line)
	if evicted {
		e.Trace.InclusionEvicted = true
		e.Trace.InclusionVictimLine = victim.Tag
		dirty := victim.Dirty
		// Inclusive LLC: recall/invalidate every L1 copy of the victim.
		// Recall traffic is charged; its latency is hidden behind the
		// memory fetch below (victim handling is off the critical path).
		holders := victim.Sharers
		if victim.Owner != cache.NoOwner {
			holders |= 1 << uint(victim.Owner)
		}
		for o := 0; o < m.Cfg.Cores; o++ {
			if holders&(1<<uint(o)) == 0 {
				continue
			}
			ol, ok := m.L1[o].Invalidate(victim.Tag)
			if !ok {
				continue // silently evicted earlier
			}
			m.Send(now, home, o, machine.CtrlBytes) // recall
			resp := machine.CtrlBytes
			if ol.Dirty {
				resp = machine.DataBytes
				dirty = true
			}
			m.Send(now, o, home, resp)
			m.IncID(ctrMesiInclusionInvals, 1)
			e.Trace.InclusionVictims = append(e.Trace.InclusionVictims, RemoteCopy{
				Core: core.CoreID(o), Snapshot: ol, Invalidated: true,
			})
		}
		if dirty {
			m.DRAMData(now, victim.Tag, true) // writeback, off critical path
		}
		m.IncID(ctrMesiLLCEvictions, 1)
	}

	lat += m.DRAMData(now, line, false)
	slot.Dirty = false
	return slot, lat
}

// ownerIntervention forwards the request to the exclusive owner, which
// downgrades (reads) or invalidates (writes) its copy and supplies data
// directly to the requester. Returns added latency and whether data was
// supplied by the owner.
func (e *Engine) ownerIntervention(now uint64, c core.CoreID, line core.Line, home int, dir *cache.Line, write bool) (uint64, bool) {
	m := e.M
	r := int(c)
	o := int(dir.Owner)

	legFwd := m.Send(now, home, o, machine.CtrlBytes) // Fwd-GetS/GetM
	ol := m.L1[o].Peek(line)
	if ol == nil {
		// Stale owner: the copy was silently evicted (clean E). Clear
		// ownership and let the home supply data.
		dir.Owner = cache.NoOwner
		dir.Sharers &^= 1 << uint(o)
		m.IncID(ctrMesiStaleOwner, 1)
		return legFwd + m.Send(now+legFwd, o, home, machine.CtrlBytes), false
	}

	snap := *ol
	if write {
		if snap.Dirty && !e.UseOwned {
			// Owner writes the dirty line back to the home slice. In
			// MOESI the writer takes the dirty data directly instead.
			m.Send(now+legFwd, o, home, machine.DataBytes+e.MetaTax)
			dir.Dirty = true
			m.IncID(ctrMesiOwnerWritebacks, 1)
		}
		m.L1[o].Invalidate(line)
		dir.Sharers &^= 1 << uint(o)
		dir.Owner = cache.NoOwner
		e.Trace.Remote = append(e.Trace.Remote, RemoteCopy{Core: core.CoreID(o), Snapshot: snap, Invalidated: true})
	} else if e.UseOwned && snap.Dirty {
		// MOESI: the owner keeps the dirty line in Owned state and
		// supplies data cache-to-cache; no LLC writeback, ownership
		// retained at the directory.
		ol.State = StateO
		dir.Sharers |= 1 << uint(o)
		m.IncID(ctrMesiOwnedRetains, 1)
		e.Trace.Remote = append(e.Trace.Remote, RemoteCopy{Core: core.CoreID(o), Snapshot: snap, Invalidated: false})
	} else {
		if snap.Dirty {
			m.Send(now+legFwd, o, home, machine.DataBytes+e.MetaTax)
			dir.Dirty = true
			m.IncID(ctrMesiOwnerWritebacks, 1)
		}
		ol.State = StateS
		ol.Dirty = false
		dir.Sharers |= 1 << uint(o)
		dir.Owner = cache.NoOwner
		e.Trace.Remote = append(e.Trace.Remote, RemoteCopy{Core: core.CoreID(o), Snapshot: snap, Invalidated: false})
	}
	m.IncID(ctrMesiInterventions, 1)

	// Cache-to-cache transfer to the requester.
	legData := m.Send(now+legFwd, o, r, machine.DataBytes+e.MetaTax)
	return legFwd + legData, true
}

// writebackVictim handles an L1 capacity eviction: dirty lines write back
// to the home slice; clean lines are dropped silently (the directory
// remains a conservative superset).
func (e *Engine) writebackVictim(now uint64, r int, victim cache.Line) {
	m := e.M
	if !victim.Dirty {
		m.IncID(ctrMesiSilentEvictions, 1)
		return
	}
	home := m.HomeTile(victim.Tag)
	m.Send(now, r, home, machine.DataBytes+e.MetaTax)
	m.IncID(ctrMesiL1Writebacks, 1)
	if dir := m.LLC[home].Peek(victim.Tag); dir != nil {
		dir.Dirty = true
		if int(dir.Owner) == r {
			dir.Owner = cache.NoOwner
		}
		dir.Sharers &^= 1 << uint(r)
	} else {
		// Inclusion should make this impossible; tolerate by writing
		// straight to memory and recording the anomaly.
		m.DRAMData(now, victim.Tag, true)
		m.IncID(ctrMesiInclusionAnomalies, 1)
	}
}

// CheckInvariants validates the protocol's global invariants; tests call
// it after every simulated event on small configurations.
//
//   - SWMR: for each line, either at most one core holds it in E/M and no
//     other core holds it at all, or all copies are in S.
//   - Inclusion: every L1-resident line has an entry at its home slice.
//   - Directory soundness: the sharer set is a superset of the true copy
//     holders, and an E/M copy's holder is the registered owner.
func (e *Engine) CheckInvariants() error {
	m := e.M
	if e.invHolders == nil {
		e.invHolders = make(map[core.Line][]invHolder)
	}
	holders := e.invHolders
	// Truncate in place: keys persist across calls (their slices keep
	// their capacity); empty entries are skipped below.
	for k, v := range holders {
		holders[k] = v[:0]
	}
	for c := 0; c < m.Cfg.Cores; c++ {
		var err error
		m.L1[c].ForEach(func(l *cache.Line) {
			if err != nil {
				return
			}
			holders[l.Tag] = append(holders[l.Tag], invHolder{c, l.State})
			dir := m.LLC[m.HomeTile(l.Tag)].Peek(l.Tag)
			if dir == nil {
				err = fmt.Errorf("inclusion violated: line %#x in L1 %d but not in LLC", uint64(l.Tag), c)
				return
			}
			if dir.Sharers&(1<<uint(c)) == 0 && int(dir.Owner) != c {
				err = fmt.Errorf("directory unsound: line %#x held by core %d but not registered", uint64(l.Tag), c)
				return
			}
			if (l.State == StateE || l.State == StateM || l.State == StateO) && int(dir.Owner) != c {
				err = fmt.Errorf("directory unsound: line %#x in %s at core %d but owner=%d",
					uint64(l.Tag), StateName(l.State), c, dir.Owner)
			}
			if l.State == StateO && !e.UseOwned {
				err = fmt.Errorf("O state on line %#x without MOESI enabled", uint64(l.Tag))
			}
		})
		if err != nil {
			return err
		}
	}
	for line, hs := range holders {
		if len(hs) == 0 {
			continue // stale scratch key, no live copies
		}
		exclusive, owned := 0, 0
		for _, h := range hs {
			switch h.state {
			case StateE, StateM:
				exclusive++
			case StateO:
				owned++
			}
		}
		if exclusive > 1 || (exclusive == 1 && len(hs) > 1) {
			return fmt.Errorf("SWMR violated on line %#x: %v", uint64(line), hs)
		}
		if owned > 1 {
			return fmt.Errorf("multiple Owned copies of line %#x: %v", uint64(line), hs)
		}
	}
	return nil
}
