package coherence

import (
	"math/rand"
	"testing"

	"arcsim/internal/core"
)

func newMOESI(cores int) (*Engine, func() error) {
	m := tiny(cores)
	e := New(m)
	e.UseOwned = true
	return e, e.CheckInvariants
}

func TestMOESIReadKeepsOwnerDirty(t *testing.T) {
	e, check := newMOESI(2)
	m := e.M
	e.Access(0, 0, wrAcc(0x1000)) // core 0: M
	wbBefore := m.Counter("mesi.owner_writebacks")
	e.Access(10, 1, rd(0x1000)) // core 1 reads
	l0 := m.L1[0].Peek(core.LineOf(0x1000))
	if l0 == nil || l0.State != StateO || !l0.Dirty {
		t.Fatalf("owner state after read = %+v, want dirty O", l0)
	}
	if m.Counter("mesi.owner_writebacks") != wbBefore {
		t.Error("MOESI downgrade wrote back to the LLC")
	}
	if m.Counter("mesi.owned_retains") != 1 {
		t.Error("owned retain not counted")
	}
	// Directory still knows the owner.
	dir := m.LLC[m.HomeTile(core.LineOf(0x1000))].Peek(core.LineOf(0x1000))
	if dir == nil || dir.Owner != 0 {
		t.Errorf("directory owner = %v", dir)
	}
	if err := check(); err != nil {
		t.Error(err)
	}
}

func TestMOESIOwnerSuppliesLaterReaders(t *testing.T) {
	e, check := newMOESI(4)
	m := e.M
	e.Access(0, 0, wrAcc(0x2000))
	e.Access(10, 1, rd(0x2000))
	dram := m.Mem.Stats.Reads
	e.Access(20, 2, rd(0x2000)) // third core: owner supplies again
	e.Access(30, 3, rd(0x2000))
	if m.Mem.Stats.Reads != dram {
		t.Error("reads of an owned line reached memory")
	}
	if got := m.Counter("mesi.interventions"); got != 3 {
		t.Errorf("interventions = %d, want 3", got)
	}
	if err := check(); err != nil {
		t.Error(err)
	}
}

func TestMOESIWriteInvalidatesOwnedLine(t *testing.T) {
	e, check := newMOESI(3)
	m := e.M
	e.Access(0, 0, wrAcc(0x3000))
	e.Access(10, 1, rd(0x3000)) // core 0 -> O, core 1 -> S
	e.Access(20, 2, wrAcc(0x3000))
	if m.L1[0].Peek(core.LineOf(0x3000)) != nil || m.L1[1].Peek(core.LineOf(0x3000)) != nil {
		t.Error("stale copies survive a write")
	}
	l2 := m.L1[2].Peek(core.LineOf(0x3000))
	if l2 == nil || l2.State != StateM {
		t.Errorf("writer state = %v", l2)
	}
	if err := check(); err != nil {
		t.Error(err)
	}
}

func TestMOESIOwnedWriteNeedsUpgrade(t *testing.T) {
	e, check := newMOESI(2)
	m := e.M
	e.Access(0, 0, wrAcc(0x4000))
	e.Access(10, 1, rd(0x4000)) // O at core 0, S at core 1
	// The owner writing again must upgrade (invalidate the sharer),
	// not silently mutate a shared line.
	e.Access(20, 0, wrAcc(0x4000))
	if m.Counter("mesi.upgrades") != 1 {
		t.Errorf("upgrades = %d, want 1", m.Counter("mesi.upgrades"))
	}
	if m.L1[1].Peek(core.LineOf(0x4000)) != nil {
		t.Error("sharer survived the owner's upgrade")
	}
	l0 := m.L1[0].Peek(core.LineOf(0x4000))
	if l0 == nil || l0.State != StateM {
		t.Errorf("owner state = %v", l0)
	}
	if err := check(); err != nil {
		t.Error(err)
	}
}

func TestMOESIOwnedEvictionWritesBack(t *testing.T) {
	e, check := newMOESI(2)
	m := e.M
	e.Access(0, 0, wrAcc(0x0))
	e.Access(10, 1, rd(0x0)) // core 0 holds O (dirty)
	// Evict core 0's set-0 line: lines 0, 4, 8 collide (4-set L1).
	e.Access(20, 0, rd(4*64))
	e.Access(30, 0, rd(8*64))
	if m.Counter("mesi.l1_writebacks") != 1 {
		t.Errorf("O eviction writebacks = %d, want 1", m.Counter("mesi.l1_writebacks"))
	}
	if err := check(); err != nil {
		t.Error(err)
	}
}

func TestMOESISavesTrafficOnMigratoryReads(t *testing.T) {
	// Producer writes, many consumers read: MOESI avoids the M->S
	// writeback on every producer handoff.
	run := func(owned bool) uint64 {
		m := tiny(4)
		e := New(m)
		e.UseOwned = owned
		now := uint64(0)
		for i := 0; i < 50; i++ {
			now += e.Access(now, 0, wrAcc(0x5000))
			for c := core.CoreID(1); c < 4; c++ {
				now += e.Access(now, c, rd(0x5000))
			}
		}
		return m.Mesh.Stats.Bytes
	}
	mesi, moesi := run(false), run(true)
	if moesi >= mesi {
		t.Errorf("MOESI bytes %d not below MESI bytes %d", moesi, mesi)
	}
}

func TestMOESIInvariantsUnderRandomStress(t *testing.T) {
	e, check := newMOESI(4)
	rng := rand.New(rand.NewSource(77))
	now := uint64(0)
	for i := 0; i < 3000; i++ {
		c := core.CoreID(rng.Intn(4))
		addr := core.Addr(rng.Intn(64)) * 8 * 4
		var acc core.Access
		if rng.Intn(2) == 0 {
			acc = rd(addr)
		} else {
			acc = wrAcc(addr)
		}
		now += e.Access(now, c, acc)
		if err := check(); err != nil {
			t.Fatalf("step %d (%v by core %d): %v", i, acc, c, err)
		}
	}
}

func TestMOESIName(t *testing.T) {
	e, _ := newMOESI(2)
	if e.Name() != "moesi" {
		t.Errorf("name = %q", e.Name())
	}
}
