// Package static implements an interleaving-agnostic region-conflict
// analyzer over trace programs. Where the dynamic designs (CE, CE+, ARC)
// observe one schedule and report the region conflicts that actually
// manifested, the analyzer reasons over every schedule the simulator could
// produce and predicts the conflicts that *may* manifest in some
// interleaving.
//
// The analysis combines three classic ingredients over the trace's
// synchronization-free region (SFR) decomposition:
//
//   - Per-thread SFR decomposition. Region boundaries are exactly the
//     simulator's: acquire, release, barrier, and thread end each close
//     the current region and open the next, with sequence numbers matching
//     core.RegionID (seq 0 first, incremented at every boundary).
//
//   - Eraser-style locksets. Within one SFR the held-lock set is constant
//     (acquires and releases are themselves boundaries), so the lockset is
//     a per-region attribute. Reentrant acquires are counted; a lock is
//     held until its outermost release.
//
//   - Barrier-phase happens-before. Barriers are the only trace operation
//     that orders *all* threads, so they induce a vector-clock order (see
//     vclock.go): two regions on different threads are concurrent exactly
//     when they fall in the same barrier phase. Lock release→acquire edges
//     are deliberately NOT treated as ordering — which releaser feeds
//     which acquirer is schedule-dependent — so locks contribute mutual
//     exclusion only, never happens-before.
//
// Two regions are conflict-predicted when they run on different threads in
// the same barrier phase, hold no lock in common, and touch overlapping
// bytes of a cache line with at least one write. The verdict is
// ProvenDRF when no pair of regions is conflict-predicted.
//
// # Soundness
//
// The contract, cross-checked continuously by internal/conformance, is:
// every conflict any dynamic protocol can detect in any interleaving is
// predicted. The argument has two halves, both anchored in the simulator's
// event-processing order (internal/sim):
//
//   - Phases: a thread's phase-p+1 events are only scheduled after every
//     thread has arrived at barrier p, and the arriving threads' boundary
//     events are processed at their arrival times, before the release. So
//     a phase-p region is always closed (its Boundary observed by the
//     oracle and every design) before any phase-p+1 access executes —
//     regions in different phases can never overlap temporally.
//
//   - Locksets: when a thread blocks on a held lock, the releaser's
//     release boundary is processed before the waiter's grant is
//     scheduled. Two regions holding a common lock therefore never have
//     temporally overlapping accesses, in any schedule.
//
// Everything else about the schedule is adversarial: any two same-phase,
// lock-disjoint regions on different threads may overlap, so their byte
// clashes are reported.
//
// # Precision
//
// The analysis is deliberately conservative — a predicted conflict may be
// unrealizable (e.g. accesses ordered by data flow the trace language
// cannot express). Precision is measured, not assumed: the STAT experiment
// (cmd/experiments -run STAT) reports the false-positive rate over the
// DRF workload suite, and the conformance engine asserts the generator's
// DRF-by-construction programs are proven DRF.
package static

import (
	"fmt"
	"sort"

	"arcsim/internal/core"
	"arcsim/internal/trace"
)

// Verdict is the analyzer's overall judgment of a program.
type Verdict int

const (
	// ProvenDRF means no pair of regions is conflict-predicted: the
	// program is data-race-free under every schedule, and no dynamic
	// design can raise a region-conflict exception on it.
	ProvenDRF Verdict = iota
	// MayConflict means at least one pair of regions is
	// conflict-predicted; see Analysis.Conflicts.
	MayConflict
)

func (v Verdict) String() string {
	if v == ProvenDRF {
		return "proven-DRF"
	}
	return "may-conflict"
}

// PredictedConflict describes one predicted conflict: two concurrent,
// lock-disjoint region groups on different threads touching overlapping
// bytes of a line with at least one write. To keep reports readable on
// large programs, regions of one thread that share a barrier phase and a
// lockset are aggregated; RegionA/RegionB name the earliest region of
// each side and Pairs counts how many raw region pairs the record covers.
type PredictedConflict struct {
	// Line is the conflicting cache line.
	Line core.Line
	// Phase is the barrier phase both sides run in.
	Phase int
	// RegionA and RegionB are the earliest conflicting regions of each
	// side, ordered so RegionA.Core < RegionB.Core.
	RegionA, RegionB core.RegionID
	// AWrites and BWrites report which sides contribute writes to the
	// clash (at least one is true).
	AWrites, BWrites bool
	// Bytes covers the clashing bytes of the line.
	Bytes core.ByteMask
	// Pairs is the number of raw region pairs aggregated into this
	// record.
	Pairs int
}

func (p PredictedConflict) String() string {
	kind := func(w bool) string {
		if w {
			return "W"
		}
		return "R"
	}
	return fmt.Sprintf("line %#x phase %d: %v(%s) vs %v(%s) over %d byte(s) [%d pair(s)]",
		uint64(p.Line.Base()), p.Phase, p.RegionA, kind(p.AWrites), p.RegionB, kind(p.BWrites),
		p.Bytes.Count(), p.Pairs)
}

// Stats summarizes the analyzed program.
type Stats struct {
	Threads  int // trace threads
	Events   int // total trace events
	Accesses int // memory accesses
	Regions  int // SFRs across all threads
	Phases   int // barrier phases (barriers + 1)
	Lines    int // distinct cache lines touched
	Shared   int // lines touched by more than one thread
}

// Analysis is the result of analyzing one trace program. It is immutable
// after Analyze returns and safe for concurrent use.
type Analysis struct {
	stats     Stats
	conflicts []PredictedConflict

	// regionPhase[t][s] and regionLockset[t][s] give region (t,s)'s
	// barrier phase and interned lockset. Every processed boundary opens
	// a region, so the slices cover seq 0..#boundaries(t).
	regionPhase   [][]int32
	regionLockset [][]int32
	// phaseStart[t][p] is the seq of thread t's first region in phase p;
	// see vclock.go for how this encodes the barrier-join vector clocks.
	phaseStart [][]uint64
	// regionAH[t][s] is region (t,s)'s acquisition-history snapshot: one
	// interned lockset id per held lock, aligned with the region's sorted
	// lockset, naming the locks freshly acquired since that lock's
	// outermost hold began (see RefutesPair). nil for lock-free regions.
	regionAH [][][]int32
	// locksets[i] is interned lockset i, sorted ascending. Index 0 is
	// the empty set. locksetIdx maps the byte encoding of a sorted set
	// to its id (lock-heavy workloads intern on every acquire/release,
	// so the lookup must not scan the table).
	locksets   [][]uint32
	locksetIdx map[string]int32
	// lines[l] holds the per-region access footprints on line l, grouped
	// by thread with ascending seq (binary-searchable).
	lines map[core.Line]*lineBuf
	// lineCache is a direct-mapped line→buffer cache used only during the
	// walk: accesses have strong line locality (a 64-byte line absorbs
	// several consecutive accesses, and loops alternate between a handful
	// of lines), and the per-access map lookup is otherwise the analysis's
	// dominant cost.
	lineCache [lineCacheSize]lineCacheEntry
}

const lineCacheSize = 4096

type lineCacheEntry struct {
	line core.Line
	buf  *lineBuf
}

// lineEntry is the merged access footprint of one region on one line.
type lineEntry struct {
	thread int32
	seq    uint64
	bits   core.AccessBits
}

// lineBuf accumulates one line's entries. lastThread/lastIdx cache the
// most recent entry so a region's repeat touches of a line merge with a
// single map lookup (the walk is per-thread, so the cache cannot be
// invalidated by another thread).
type lineBuf struct {
	entries    []lineEntry
	lastThread int32
	lastIdx    int32
}

// Analyze runs the static analysis over tr. The trace must validate
// (trace.Validate rules: balanced locks, consistent barrier sequences,
// in-line accesses); analysis errors are limited to validation failures.
func Analyze(tr *trace.Trace) (*Analysis, error) {
	if tr == nil {
		return nil, fmt.Errorf("static: nil trace")
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("static: %w", err)
	}
	a := &Analysis{
		regionPhase:   make([][]int32, len(tr.Threads)),
		regionLockset: make([][]int32, len(tr.Threads)),
		phaseStart:    make([][]uint64, len(tr.Threads)),
		regionAH:      make([][][]int32, len(tr.Threads)),
		lines:         make(map[core.Line]*lineBuf),
	}
	a.internLockset(nil) // index 0: empty set
	for t := range tr.Threads {
		a.walkThread(tr, t)
	}
	a.stats.Threads = len(tr.Threads)
	a.stats.Events = tr.Events()
	a.stats.Phases = len(a.phaseStart[0])
	a.stats.Lines = len(a.lines)
	for t := range a.regionPhase {
		a.stats.Regions += len(a.regionPhase[t])
	}
	a.enumerate()
	return a, nil
}

// walkThread decomposes one thread into regions, assigning each its phase
// and lockset and recording per-line access footprints. The region
// sequence numbering mirrors the simulator exactly: seq starts at 0 and
// increments each time a boundary event is processed (an acquire's
// boundary fires even while the thread then blocks for the lock).
func (a *Analysis) walkThread(tr *trace.Trace, t int) {
	var (
		seq   uint64
		phase int32
		held  = map[uint32]int{} // lock -> reentrant acquire depth
		cur   = make([]uint32, 0, 4)
		curID int32 // interned id of cur
		// ah[l] is lock l's acquisition history — the sorted set of locks
		// freshly acquired since l's outermost hold began. Reentrant
		// acquires never block, so they are not acquisitions here.
		ah = map[uint32][]uint32{}
	)
	open := func() {
		a.regionPhase[t] = append(a.regionPhase[t], phase)
		a.regionLockset[t] = append(a.regionLockset[t], curID)
		var snap []int32
		if len(cur) > 0 {
			snap = make([]int32, len(cur))
			for i, l := range cur {
				snap[i] = a.internLockset(ah[l])
			}
		}
		a.regionAH[t] = append(a.regionAH[t], snap)
	}
	a.phaseStart[t] = append(a.phaseStart[t], 0)
	open() // region 0: phase 0, no locks
	for _, ev := range tr.Threads[t] {
		switch ev.Op {
		case trace.OpRead, trace.OpWrite:
			acc := ev.Mem()
			a.record(acc.Line(), t, seq, acc.Kind, acc.Mask())
			a.stats.Accesses++
		case trace.OpAcquire:
			seq++
			if held[ev.Arg]++; held[ev.Arg] == 1 {
				for _, l := range cur {
					if !containsLock(ah[l], ev.Arg) {
						ah[l] = insertLock(ah[l], ev.Arg)
					}
				}
				ah[ev.Arg] = nil
				cur = insertLock(cur, ev.Arg)
				curID = a.internLockset(cur)
			}
			open()
		case trace.OpRelease:
			seq++
			if held[ev.Arg]--; held[ev.Arg] == 0 {
				delete(held, ev.Arg)
				delete(ah, ev.Arg)
				cur = removeLock(cur, ev.Arg)
				curID = a.internLockset(cur)
			}
			open()
		case trace.OpBarrier:
			seq++
			phase++
			a.phaseStart[t] = append(a.phaseStart[t], seq)
			open()
		case trace.OpEnd:
			seq++
			open()
		}
	}
}

// record merges one access into the region's footprint on the line.
// Threads are walked one at a time in index order, so per-line entries
// end up grouped by thread with ascending seq — the order footprint's
// binary search needs — and the lineBuf cache merges repeat touches of
// the walking region in O(1).
func (a *Analysis) record(line core.Line, t int, seq uint64, kind core.AccessKind, mask core.ByteMask) {
	slot := &a.lineCache[(uint64(line)*0x9e3779b97f4a7c15)>>(64-12)]
	b := slot.buf
	if b == nil || slot.line != line {
		b = a.lines[line]
		if b == nil {
			b = &lineBuf{lastThread: -1}
			a.lines[line] = b
		}
		slot.line, slot.buf = line, b
	}
	if b.lastThread == int32(t) && b.entries[b.lastIdx].seq == seq {
		b.entries[b.lastIdx].bits.Add(kind, mask)
		return
	}
	e := lineEntry{thread: int32(t), seq: seq}
	e.bits.Add(kind, mask)
	b.lastThread, b.lastIdx = int32(t), int32(len(b.entries))
	b.entries = append(b.entries, e)
}

// internLockset returns a stable id for the sorted lockset ls, interning
// it on first sight.
func (a *Analysis) internLockset(ls []uint32) int32 {
	key := make([]byte, 0, 4*len(ls))
	for _, l := range ls {
		key = append(key, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	if id, ok := a.locksetIdx[string(key)]; ok {
		return id
	}
	if a.locksetIdx == nil {
		a.locksetIdx = map[string]int32{}
	}
	id := int32(len(a.locksets))
	a.locksets = append(a.locksets, append([]uint32(nil), ls...))
	a.locksetIdx[string(key)] = id
	return id
}

// disjoint reports whether interned locksets i and j share no lock. Both
// are sorted, so a linear merge suffices.
func (a *Analysis) disjoint(i, j int32) bool {
	x, y := a.locksets[i], a.locksets[j]
	for len(x) > 0 && len(y) > 0 {
		switch {
		case x[0] == y[0]:
			return false
		case x[0] < y[0]:
			x = x[1:]
		default:
			y = y[1:]
		}
	}
	return true
}

// clashBytes returns the bytes where the two footprints conflict: an
// overlap with at least one writer.
func clashBytes(x, y core.AccessBits) core.ByteMask {
	return (x.WriteMask & y.Touched()) | (x.Touched() & y.WriteMask)
}

// aggKey groups same-line regions that are interchangeable for conflict
// purposes: same thread, same phase, same lockset.
type aggKey struct {
	phase   int32
	thread  int32
	lockset int32
}

type agg struct {
	bits     core.AccessBits
	firstSeq uint64
	count    int
}

// enumerate builds the predicted-conflict set. Per line, regions are
// first aggregated by (phase, thread, lockset) — the only attributes the
// conflict predicate reads — so the pairwise pass is bounded by
// threads × locksets per phase rather than by region count.
func (a *Analysis) enumerate() {
	lines := make([]core.Line, 0, len(a.lines))
	for l := range a.lines {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })

	for _, line := range lines {
		entries := a.lines[line].entries
		multi, anyWrite := false, false
		for _, e := range entries {
			if e.thread != entries[0].thread {
				multi = true
			}
			if e.bits.WriteMask != 0 {
				anyWrite = true
			}
		}
		if multi {
			a.stats.Shared++
		}
		if !multi || !anyWrite {
			continue
		}
		aggs := map[aggKey]*agg{}
		keys := make([]aggKey, 0, 8)
		for _, e := range entries {
			k := aggKey{
				phase:   a.regionPhase[e.thread][e.seq],
				thread:  e.thread,
				lockset: a.regionLockset[e.thread][e.seq],
			}
			g, ok := aggs[k]
			if !ok {
				g = &agg{firstSeq: e.seq}
				aggs[k] = g
				keys = append(keys, k)
			}
			g.bits.Merge(e.bits)
			g.count++
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].phase != keys[j].phase {
				return keys[i].phase < keys[j].phase
			}
			if keys[i].thread != keys[j].thread {
				return keys[i].thread < keys[j].thread
			}
			return keys[i].lockset < keys[j].lockset
		})
		for i, ki := range keys {
			for _, kj := range keys[i+1:] {
				if kj.phase != ki.phase {
					break // keys are phase-sorted
				}
				if kj.thread == ki.thread || !a.disjoint(ki.lockset, kj.lockset) {
					continue
				}
				gi, gj := aggs[ki], aggs[kj]
				clash := clashBytes(gi.bits, gj.bits)
				if clash == 0 {
					continue
				}
				pc := PredictedConflict{
					Line:    line,
					Phase:   int(ki.phase),
					RegionA: core.RegionID{Core: core.CoreID(ki.thread), Seq: gi.firstSeq},
					RegionB: core.RegionID{Core: core.CoreID(kj.thread), Seq: gj.firstSeq},
					AWrites: gi.bits.WriteMask&gj.bits.Touched() != 0,
					BWrites: gj.bits.WriteMask&gi.bits.Touched() != 0,
					Bytes:   clash,
					Pairs:   gi.count * gj.count,
				}
				if pc.RegionB.Core < pc.RegionA.Core {
					pc.RegionA, pc.RegionB = pc.RegionB, pc.RegionA
					pc.AWrites, pc.BWrites = pc.BWrites, pc.AWrites
				}
				a.conflicts = append(a.conflicts, pc)
			}
		}
	}
	// The documented deterministic report order: line, then region pair
	// (A's core/seq, then B's), then phase. Emission above is already
	// deterministic, but downstream artifacts (-analyze JSON, witness
	// reports) pin this explicit order, independent of how enumeration
	// groups records.
	sort.Slice(a.conflicts, func(i, j int) bool {
		x, y := a.conflicts[i], a.conflicts[j]
		if x.Line != y.Line {
			return x.Line < y.Line
		}
		if x.RegionA.Core != y.RegionA.Core {
			return x.RegionA.Core < y.RegionA.Core
		}
		if x.RegionA.Seq != y.RegionA.Seq {
			return x.RegionA.Seq < y.RegionA.Seq
		}
		if x.RegionB.Core != y.RegionB.Core {
			return x.RegionB.Core < y.RegionB.Core
		}
		if x.RegionB.Seq != y.RegionB.Seq {
			return x.RegionB.Seq < y.RegionB.Seq
		}
		return x.Phase < y.Phase
	})
}

// Verdict returns ProvenDRF when no conflict is predicted.
func (a *Analysis) Verdict() Verdict {
	if len(a.conflicts) == 0 {
		return ProvenDRF
	}
	return MayConflict
}

// ProvenDRF reports whether the program is proven data-race-free across
// all schedules.
func (a *Analysis) ProvenDRF() bool { return a.Verdict() == ProvenDRF }

// Conflicts returns the predicted conflicts in the documented
// deterministic order: ascending line, then region pair (RegionA's core
// and seq, then RegionB's), then phase. The order is byte-stable across
// runs and map-iteration orders, so JSON artifacts built from it
// (-analyze output, witness reports) diff cleanly. The slice is a copy.
func (a *Analysis) Conflicts() []PredictedConflict {
	return append([]PredictedConflict(nil), a.conflicts...)
}

// Stats returns program statistics gathered during the walk.
func (a *Analysis) Stats() Stats { return a.stats }

// footprint returns region r's access footprint on line, if it touched
// the line. Entries per line are grouped by thread with ascending seq.
func (a *Analysis) footprint(line core.Line, r core.RegionID) (core.AccessBits, bool) {
	var entries []lineEntry
	if b := a.lines[line]; b != nil {
		entries = b.entries
	}
	i := sort.Search(len(entries), func(i int) bool {
		e := entries[i]
		if e.thread != int32(r.Core) {
			return e.thread > int32(r.Core)
		}
		return e.seq >= r.Seq
	})
	if i < len(entries) && entries[i].thread == int32(r.Core) && entries[i].seq == r.Seq {
		return entries[i].bits, true
	}
	return core.AccessBits{}, false
}

// regionKnown reports whether r is a region the walk assigned attributes
// to (its thread exists and its seq is in range).
func (a *Analysis) regionKnown(r core.RegionID) bool {
	t := int(r.Core)
	return t >= 0 && t < len(a.regionPhase) && r.Seq < uint64(len(a.regionPhase[t]))
}

// PredictsPair reports whether the analysis predicts a conflict between
// the two specific regions on the given line. This is the exact per-pair
// predicate (not the aggregated report): the conformance engine uses it
// to assert that every dynamically detected conflict was predicted.
func (a *Analysis) PredictsPair(line core.Line, r1, r2 core.RegionID) bool {
	if r1.Core == r2.Core || !a.regionKnown(r1) || !a.regionKnown(r2) {
		return false
	}
	b1, ok1 := a.footprint(line, r1)
	b2, ok2 := a.footprint(line, r2)
	if !ok1 || !ok2 || clashBytes(b1, b2) == 0 {
		return false
	}
	if !a.Concurrent(r1, r2) {
		return false
	}
	return a.disjoint(a.regionLockset[r1.Core][r1.Seq], a.regionLockset[r2.Core][r2.Seq])
}

// Lockset returns region r's held-lock set (sorted, possibly empty).
func (a *Analysis) Lockset(r core.RegionID) []uint32 {
	if !a.regionKnown(r) {
		return nil
	}
	return append([]uint32(nil), a.locksets[a.regionLockset[r.Core][r.Seq]]...)
}

// Phase returns region r's barrier phase, or -1 for unknown regions.
func (a *Analysis) Phase(r core.RegionID) int {
	if !a.regionKnown(r) {
		return -1
	}
	return int(a.regionPhase[r.Core][r.Seq])
}

// Phases returns the number of barrier phases (barriers + 1).
func (a *Analysis) Phases() int { return a.stats.Phases }

// PhaseStarts returns, per thread, the region seq of that thread's first
// region in each phase (phaseStart[t][p]); every inner slice has Phases()
// entries. The phase-parallel simulator uses these to rebase per-segment
// region seqs back onto whole-trace numbering. The result is a deep copy.
func (a *Analysis) PhaseStarts() [][]uint64 {
	out := make([][]uint64, len(a.phaseStart))
	for t, ps := range a.phaseStart {
		out[t] = append([]uint64(nil), ps...)
	}
	return out
}

// ForEachLineTouch calls fn once per (line, thread, phase) region
// footprint recorded during the walk — one call per region-line entry, so
// a (line, thread, phase) triple may repeat across regions — with wrote
// reporting whether that footprint includes a write. The phase-parallel
// planner uses this to build per-phase footprints without re-walking the
// trace. Iteration order is unspecified.
func (a *Analysis) ForEachLineTouch(fn func(line core.Line, thread, phase int, wrote bool)) {
	for line, b := range a.lines {
		for _, e := range b.entries {
			fn(line, int(e.thread), int(a.regionPhase[e.thread][e.seq]), e.bits.WriteMask != 0)
		}
	}
}

// RefutesPair reports whether the predicted pair (r1, r2) is provably
// unrealizable: no legal schedule can have both regions open at once, so
// no dynamic design can ever detect a conflict between them. The proof
// is the classic acquisition-history argument (Kahlon et al.): if r1
// holds lock la and freshly acquired lb after la's outermost hold began
// (lb is in la's acquisition history), while r2 holds lb and
// symmetrically has la in lb's history, then simultaneous occupancy
// yields a timestamp cycle — r1's lb-acquire must precede r2's
// lb-outermost-hold, which precedes r2's la-acquire, which precedes r1's
// la-outermost-hold, which precedes r1's lb-acquire. Reentrant acquires
// never block, so they are not history entries; locks never span
// barriers (trace.Validate), so histories are self-contained per phase.
//
// RefutesPair refines PredictsPair — the soundness contract (detected ⊆
// predicted) is untouched; refutation carves a provably-undetectable
// subset out of the predicted set. FuzzWitness (internal/conformance)
// cross-checks it: refuted pairs must never be detected under any fuzzed
// schedule.
func (a *Analysis) RefutesPair(r1, r2 core.RegionID) bool {
	if r1.Core == r2.Core || !a.regionKnown(r1) || !a.regionKnown(r2) {
		return false
	}
	ls1 := a.locksets[a.regionLockset[r1.Core][r1.Seq]]
	ls2 := a.locksets[a.regionLockset[r2.Core][r2.Seq]]
	ah1 := a.regionAH[r1.Core][r1.Seq]
	ah2 := a.regionAH[r2.Core][r2.Seq]
	for i, la := range ls1 {
		h1 := a.locksets[ah1[i]]
		for j, lb := range ls2 {
			if la == lb {
				// A common lock is mutual exclusion, not an acquisition
				// ordering (and PredictsPair already excludes the pair).
				continue
			}
			if containsLock(h1, lb) && containsLock(a.locksets[ah2[j]], la) {
				return true
			}
		}
	}
	return false
}

// WitnessPairs expands one aggregated conflict record into its concrete
// clashing region pairs — the targets a witness replay can aim at. A
// record aggregates regions by (phase, thread, lockset) and clashes the
// groups' merged footprints, so an individual member pair need not clash
// byte-wise; only pairs that do are realizable witnesses. Returned pairs
// keep RegionA's side first and follow the entries' deterministic order
// (ascending seq per side); refuted pairs (RefutesPair) are counted but
// not returned, and max bounds the returned slice (<=0 means no bound).
// clashing counts all byte-clashing pairs, so clashing == refuted means
// the whole record is provably unrealizable.
func (a *Analysis) WitnessPairs(pc PredictedConflict, max int) (pairs [][2]core.RegionID, clashing, refuted int) {
	b := a.lines[pc.Line]
	if b == nil || !a.regionKnown(pc.RegionA) || !a.regionKnown(pc.RegionB) {
		return nil, 0, 0
	}
	side := func(ref core.RegionID) []lineEntry {
		var out []lineEntry
		ls := a.regionLockset[ref.Core][ref.Seq]
		for _, e := range b.entries {
			if e.thread != int32(ref.Core) {
				continue
			}
			if a.regionPhase[e.thread][e.seq] == int32(pc.Phase) && a.regionLockset[e.thread][e.seq] == ls {
				out = append(out, e)
			}
		}
		return out
	}
	for _, ea := range side(pc.RegionA) {
		for _, eb := range side(pc.RegionB) {
			if clashBytes(ea.bits, eb.bits) == 0 {
				continue
			}
			clashing++
			ra := core.RegionID{Core: pc.RegionA.Core, Seq: ea.seq}
			rb := core.RegionID{Core: pc.RegionB.Core, Seq: eb.seq}
			if a.RefutesPair(ra, rb) {
				refuted++
				continue
			}
			if max <= 0 || len(pairs) < max {
				pairs = append(pairs, [2]core.RegionID{ra, rb})
			}
		}
	}
	return pairs, clashing, refuted
}

// RecordContains reports whether the unordered region pair (r1, r2)
// belongs to record pc: one region on each side, matching the side's
// thread, phase, and lockset, with byte-clashing footprints on the
// record's line. The witness engine uses it to credit a detected
// conflict to the record it confirms.
func (a *Analysis) RecordContains(pc PredictedConflict, r1, r2 core.RegionID) bool {
	if !a.regionKnown(r1) || !a.regionKnown(r2) {
		return false
	}
	if r1.Core == pc.RegionB.Core {
		r1, r2 = r2, r1
	}
	if r1.Core != pc.RegionA.Core || r2.Core != pc.RegionB.Core {
		return false
	}
	inSide := func(ref, r core.RegionID) bool {
		return a.regionPhase[r.Core][r.Seq] == int32(pc.Phase) &&
			a.regionLockset[r.Core][r.Seq] == a.regionLockset[ref.Core][ref.Seq]
	}
	if !inSide(pc.RegionA, r1) || !inSide(pc.RegionB, r2) {
		return false
	}
	b1, ok1 := a.footprint(pc.Line, r1)
	b2, ok2 := a.footprint(pc.Line, r2)
	return ok1 && ok2 && clashBytes(b1, b2) != 0
}

// containsLock reports whether the sorted set ls contains l.
func containsLock(ls []uint32, l uint32) bool {
	i := sort.Search(len(ls), func(i int) bool { return ls[i] >= l })
	return i < len(ls) && ls[i] == l
}

// insertLock adds l to the sorted set ls (no-op duplicates are never
// passed: callers track reentrancy).
func insertLock(ls []uint32, l uint32) []uint32 {
	i := sort.Search(len(ls), func(i int) bool { return ls[i] >= l })
	ls = append(ls, 0)
	copy(ls[i+1:], ls[i:])
	ls[i] = l
	return ls
}

// removeLock deletes l from the sorted set ls.
func removeLock(ls []uint32, l uint32) []uint32 {
	i := sort.Search(len(ls), func(i int) bool { return ls[i] >= l })
	if i < len(ls) && ls[i] == l {
		return append(ls[:i], ls[i+1:]...)
	}
	return ls
}
