package static_test

import (
	"testing"

	"arcsim/internal/conformance"
	"arcsim/internal/core"
	"arcsim/internal/static"
	"arcsim/internal/trace"
	"arcsim/internal/workload"
)

// twoThreads builds a named two-thread trace from the given event
// streams, appending End markers.
func twoThreads(name string, t0, t1 []trace.Event) *trace.Trace {
	return &trace.Trace{Name: name, Threads: [][]trace.Event{
		append(t0, trace.End()),
		append(t1, trace.End()),
	}}
}

func analyze(t *testing.T, tr *trace.Trace) *static.Analysis {
	t.Helper()
	an, err := static.Analyze(tr)
	if err != nil {
		t.Fatalf("Analyze(%s): %v", tr.Name, err)
	}
	return an
}

const base = core.Addr(0x1000)

func TestSingleThreadIsAlwaysDRF(t *testing.T) {
	tr := &trace.Trace{Name: "single", Threads: [][]trace.Event{{
		trace.Write(base, 8),
		trace.Acquire(0),
		trace.Write(base, 8),
		trace.Release(0),
		trace.Read(base, 8),
		trace.End(),
	}}}
	an := analyze(t, tr)
	if !an.ProvenDRF() {
		t.Fatalf("single-thread program not proven DRF: %v", an.Conflicts())
	}
	if st := an.Stats(); st.Threads != 1 || st.Regions != 4 || st.Shared != 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestUnsynchronizedWritesConflict(t *testing.T) {
	tr := twoThreads("racy",
		[]trace.Event{trace.Write(base, 8)},
		[]trace.Event{trace.Write(base+4, 8)},
	)
	an := analyze(t, tr)
	if an.Verdict() != static.MayConflict {
		t.Fatal("overlapping unsynchronized writes not predicted")
	}
	cs := an.Conflicts()
	if len(cs) != 1 {
		t.Fatalf("want 1 predicted conflict, got %v", cs)
	}
	c := cs[0]
	want := core.MaskRange(4, 4) // bytes 4..7 overlap
	if c.Line != core.LineOf(base) || c.Bytes != want || !c.AWrites || !c.BWrites {
		t.Fatalf("unexpected conflict record: %+v", c)
	}
	r0 := core.RegionID{Core: 0, Seq: 0}
	r1 := core.RegionID{Core: 1, Seq: 0}
	if !an.PredictsPair(c.Line, r0, r1) || !an.PredictsPair(c.Line, r1, r0) {
		t.Fatal("PredictsPair should hold symmetrically for the racy pair")
	}
	if an.PredictsPair(c.Line, r0, core.RegionID{Core: 0, Seq: 1}) {
		t.Fatal("same-thread pair must never be predicted")
	}
}

func TestDisjointBytesOfOneLineAreDRF(t *testing.T) {
	tr := twoThreads("disjoint-bytes",
		[]trace.Event{trace.Write(base, 8)},
		[]trace.Event{trace.Write(base+8, 8)},
	)
	if an := analyze(t, tr); !an.ProvenDRF() {
		t.Fatalf("byte-disjoint writes predicted as conflicting: %v", an.Conflicts())
	}
}

func TestReadSharingIsDRF(t *testing.T) {
	tr := twoThreads("read-shared",
		[]trace.Event{trace.Read(base, 8)},
		[]trace.Event{trace.Read(base, 8)},
	)
	if an := analyze(t, tr); !an.ProvenDRF() {
		t.Fatalf("read-read sharing predicted as conflicting: %v", an.Conflicts())
	}
}

func TestLocksetProtection(t *testing.T) {
	locked := func(lock uint32, evs ...trace.Event) []trace.Event {
		out := []trace.Event{trace.Acquire(lock)}
		out = append(out, evs...)
		return append(out, trace.Release(lock))
	}
	if an := analyze(t, twoThreads("locked",
		locked(7, trace.Write(base, 8)),
		locked(7, trace.Write(base, 8)),
	)); !an.ProvenDRF() {
		t.Fatalf("common-lock writes predicted as conflicting: %v", an.Conflicts())
	}
	if an := analyze(t, twoThreads("different-locks",
		locked(7, trace.Write(base, 8)),
		locked(8, trace.Write(base, 8)),
	)); an.Verdict() != static.MayConflict {
		t.Fatal("disjoint-lock writes must be predicted")
	}
	// One side unlocked: still a conflict.
	if an := analyze(t, twoThreads("half-locked",
		locked(7, trace.Write(base, 8)),
		[]trace.Event{trace.Write(base, 8)},
	)); an.Verdict() != static.MayConflict {
		t.Fatal("lock vs no-lock writes must be predicted")
	}
}

func TestReentrantAndNestedLocks(t *testing.T) {
	// Reentrant: the inner region still holds lock 0 (depth 2), and the
	// region between the two releases holds it at depth 1.
	t0 := []trace.Event{
		trace.Acquire(0),
		trace.Acquire(0),
		trace.Write(base, 8),
		trace.Release(0),
		trace.Write(base+8, 8),
		trace.Release(0),
	}
	t1 := []trace.Event{
		trace.Acquire(0),
		trace.Write(base, 16),
		trace.Release(0),
	}
	if an := analyze(t, twoThreads("reentrant", t0, t1)); !an.ProvenDRF() {
		t.Fatalf("reentrant-locked writes predicted as conflicting: %v", an.Conflicts())
	}
	// Nested distinct locks: {0,1} vs {1} share lock 1 → DRF; {0,1} vs
	// {2} are disjoint → conflict.
	nested := []trace.Event{
		trace.Acquire(0),
		trace.Acquire(1),
		trace.Write(base, 8),
		trace.Release(1),
		trace.Release(0),
	}
	inner := core.RegionID{Core: 0, Seq: 2}
	an := analyze(t, twoThreads("nested-shared",
		nested,
		[]trace.Event{trace.Acquire(1), trace.Write(base, 8), trace.Release(1)},
	))
	if !an.ProvenDRF() {
		t.Fatalf("nested {0,1} vs {1} predicted as conflicting: %v", an.Conflicts())
	}
	if ls := an.Lockset(inner); len(ls) != 2 || ls[0] != 0 || ls[1] != 1 {
		t.Fatalf("inner nested region lockset = %v, want [0 1]", ls)
	}
	if an := analyze(t, twoThreads("nested-disjoint",
		nested,
		[]trace.Event{trace.Acquire(2), trace.Write(base, 8), trace.Release(2)},
	)); an.Verdict() != static.MayConflict {
		t.Fatal("nested {0,1} vs {2} must be predicted")
	}
}

func TestBarrierPhaseSeparation(t *testing.T) {
	// Same line written by both threads, but in different barrier
	// phases: DRF in every schedule.
	tr := twoThreads("phased",
		[]trace.Event{trace.Write(base, 8), trace.Barrier(0)},
		[]trace.Event{trace.Barrier(0), trace.Write(base, 8)},
	)
	an := analyze(t, tr)
	if !an.ProvenDRF() {
		t.Fatalf("barrier-separated writes predicted as conflicting: %v", an.Conflicts())
	}
	r0p0 := core.RegionID{Core: 0, Seq: 0} // t0's write, phase 0
	r1p1 := core.RegionID{Core: 1, Seq: 1} // t1's write, phase 1
	if !an.HappensBefore(r0p0, r1p1) || an.HappensBefore(r1p1, r0p0) {
		t.Fatal("phase-0 region must happen before phase-1 region")
	}
	if an.Concurrent(r0p0, r1p1) {
		t.Fatal("phase-separated regions must not be concurrent")
	}
	if an.Phase(r0p0) != 0 || an.Phase(r1p1) != 1 {
		t.Fatalf("phases = %d, %d; want 0, 1", an.Phase(r0p0), an.Phase(r1p1))
	}
	// Same-phase regions of different threads are concurrent.
	r1p0 := core.RegionID{Core: 1, Seq: 0}
	if !an.Concurrent(r0p0, r1p0) {
		t.Fatal("same-phase regions must be concurrent")
	}
	// The start clock of t1's phase-1 region has seen t0 past its
	// phase-0 regions (t0 completed region 0 before the barrier edge).
	if c := an.StartClock(r1p1); c[0] <= 0 {
		t.Fatalf("phase-1 start clock %v has not seen t0's phase-0 region", c)
	}
	// Same writes without the barrier: predicted.
	if an := analyze(t, twoThreads("unphased",
		[]trace.Event{trace.Write(base, 8)},
		[]trace.Event{trace.Write(base, 8)},
	)); an.Verdict() != static.MayConflict {
		t.Fatal("same-phase same-line writes must be predicted")
	}
}

func TestSubwordOverlapAcrossLineBoundary(t *testing.T) {
	// t0 writes the last 4 bytes of line 0; t1 reads 2 bytes straddling
	// neither line boundary but overlapping t0's write by one byte, and
	// separately reads the first bytes of line 1. Only the sub-word
	// overlap on line 0 is a conflict; the adjacent-line access is not.
	lineEnd := base + core.LineSize - 4 // bytes 60..63 of line 0
	tr := twoThreads("subword",
		[]trace.Event{trace.Write(lineEnd, 4)},
		[]trace.Event{
			trace.Read(base+core.LineSize-1, 1), // byte 63 of line 0
			trace.Read(base+core.LineSize, 4),   // bytes 0..3 of line 1
		},
	)
	an := analyze(t, tr)
	cs := an.Conflicts()
	if len(cs) != 1 {
		t.Fatalf("want exactly one predicted conflict, got %v", cs)
	}
	c := cs[0]
	if c.Line != core.LineOf(base) {
		t.Fatalf("conflict on line %#x, want line of %#x", uint64(c.Line.Base()), uint64(base))
	}
	if want := core.MaskRange(63, 1); c.Bytes != want {
		t.Fatalf("clash bytes %v, want %v", c.Bytes, want)
	}
	if !c.AWrites || c.BWrites {
		t.Fatalf("kinds wrong: %+v (want writer vs reader)", c)
	}
}

func TestPlantedGeneratorsArePredicted(t *testing.T) {
	for _, plant := range []conformance.Plant{conformance.PlantOverlap, conformance.PlantSubword, conformance.PlantEvict} {
		for seed := int64(1); seed <= 5; seed++ {
			prog := conformance.Generate(conformance.Config{
				Threads: 4, Ops: 60, Phases: 2, Locks: 2,
				SharedLines: 4, Plant: plant,
			}, seed)
			an := analyze(t, prog.Trace)
			if an.ProvenDRF() {
				t.Fatalf("plant %v seed %d: program with a planted conflict proven DRF", plant, seed)
			}
			for _, line := range prog.Planted {
				found := false
				for _, c := range an.Conflicts() {
					if c.Line == line {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("plant %v seed %d: planted line %#x not among predictions %v",
						plant, seed, uint64(line.Base()), an.Conflicts())
				}
			}
		}
	}
}

func TestGeneratedDRFProgramsProven(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		prog := conformance.Generate(conformance.Config{
			Threads: 4, Ops: 120, Phases: 3, Locks: 3, MaxNest: 2,
			SharedLines: 6,
		}, seed)
		if !prog.DRF {
			t.Fatalf("seed %d: generator did not mark the program DRF", seed)
		}
		an := analyze(t, prog.Trace)
		if !an.ProvenDRF() {
			t.Fatalf("seed %d: DRF-by-construction program not proven DRF: %v",
				seed, an.Conflicts()[0])
		}
	}
}

func TestAnalyzeRejectsInvalidTraces(t *testing.T) {
	if _, err := static.Analyze(nil); err == nil {
		t.Fatal("nil trace accepted")
	}
	bad := &trace.Trace{Name: "bad", Threads: [][]trace.Event{{
		trace.Release(0), trace.End(), // release without acquire
	}}}
	if _, err := static.Analyze(bad); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

func TestWorkloadSuiteVerdicts(t *testing.T) {
	// The DRF workload suite must be proven DRF (the STAT experiment
	// reports this as the false-positive rate); the racy workloads must
	// not be.
	params := workload.Params{Threads: 8, Scale: 0.05, Seed: 1}
	for _, spec := range workload.Catalog() {
		tr := spec.Build(params)
		an := analyze(t, tr)
		if spec.Racy && an.ProvenDRF() {
			t.Errorf("%s: racy workload proven DRF", spec.Name)
		}
		if !spec.Racy && !an.ProvenDRF() {
			t.Errorf("%s: DRF workload not proven (first: %v)", spec.Name, an.Conflicts()[0])
		}
	}
}

func BenchmarkAnalyze(b *testing.B) {
	tr := workload.Catalog()[0].Build(workload.Params{Threads: 32, Scale: 0.25, Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := static.Analyze(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPredictsPairFootprintEdges probes the binary search behind the
// per-pair predicate. A line's entries are sorted by (thread, seq); the
// search must hit the span's first and last entries, miss seqs that fall
// between entries (lock-held regions that skipped the line), miss
// out-of-range regions, handle a single-entry span, and answer false for
// a line nobody touched.
func TestPredictsPairFootprintEdges(t *testing.T) {
	// T0 touches the target line in regions 0 (first entry), 2, and 4
	// (last entry); regions 1 and 3 hold a lock and write a different
	// line. T1's span on the line has exactly one entry.
	tr := twoThreads("footprint-edges",
		[]trace.Event{
			trace.Write(base, 1),
			trace.Acquire(7), trace.Write(base+256, 8), trace.Release(7),
			trace.Write(base+1, 1),
			trace.Acquire(7), trace.Write(base+256, 8), trace.Release(7),
			trace.Write(base+2, 1),
		},
		[]trace.Event{trace.Read(base, 8)},
	)
	an := analyze(t, tr)
	cs := an.Conflicts()
	if len(cs) == 0 {
		t.Fatal("no conflicts predicted")
	}
	line := cs[0].Line
	t1 := core.RegionID{Core: 1, Seq: 0}
	for _, seq := range []uint64{0, 2, 4} {
		r := core.RegionID{Core: 0, Seq: seq}
		if !an.PredictsPair(line, r, t1) {
			t.Errorf("PredictsPair(line, %v, %v) = false, want true", r, t1)
		}
		if !an.PredictsPair(line, t1, r) {
			t.Errorf("PredictsPair is not symmetric for %v", r)
		}
	}
	// Known regions whose seq falls between the span's entries: the
	// search lands on the next entry and must reject the seq mismatch.
	for _, seq := range []uint64{1, 3} {
		r := core.RegionID{Core: 0, Seq: seq}
		if an.PredictsPair(line, r, t1) {
			t.Errorf("PredictsPair(line, %v, %v) = true for an off-line region", r, t1)
		}
	}
	// Past the last entry of the span / unknown regions.
	if an.PredictsPair(line, core.RegionID{Core: 0, Seq: 5}, t1) {
		t.Error("out-of-range region predicted")
	}
	if an.PredictsPair(line, core.RegionID{Core: 1, Seq: 1}, core.RegionID{Core: 0, Seq: 0}) {
		t.Error("unknown region on the single-entry side predicted")
	}
	// A line nobody touched has no entry table at all.
	if an.PredictsPair(line+1, core.RegionID{Core: 0, Seq: 0}, t1) {
		t.Error("absent line predicted")
	}
	// Same-core pairs are never conflicts.
	if an.PredictsPair(line, core.RegionID{Core: 0, Seq: 0}, core.RegionID{Core: 0, Seq: 2}) {
		t.Error("same-core pair predicted")
	}
}
