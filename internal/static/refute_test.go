package static_test

import (
	"reflect"
	"sort"
	"testing"

	"arcsim/internal/core"
	"arcsim/internal/trace"
)

// ahGadget is the canonical acquisition-history refutation program: each
// thread's write region holds one lock and acquired the *other* lock
// after its own hold began. Simultaneous occupancy of both write regions
// would need T0's acquire of lock 2 to precede T1's outermost hold of
// lock 2 AND follow it — a cycle — so the predicted pair is
// unrealizable in every legal schedule.
func ahGadget() *trace.Trace {
	return twoThreads("ah-gadget",
		[]trace.Event{
			trace.Acquire(1), trace.Acquire(2), trace.Release(2), // region 3: holds {1}, AH(1)={2}
			trace.Write(base, 8),
			trace.Release(1),
		},
		[]trace.Event{
			trace.Acquire(2), trace.Acquire(1), trace.Release(1), // region 3: holds {2}, AH(2)={1}
			trace.Write(base, 8),
			trace.Release(2),
		},
	)
}

// realizableGadget breaks one half of the cycle: T1 releases lock 1
// before acquiring lock 2, so AH(2) is empty and the schedule
// T1:acq1,rel1 → T0:acq1,acq2,rel2 → T1:acq2 co-opens both regions.
func realizableGadget() *trace.Trace {
	return twoThreads("ah-realizable",
		[]trace.Event{
			trace.Acquire(1), trace.Acquire(2), trace.Release(2),
			trace.Write(base, 8),
			trace.Release(1),
		},
		[]trace.Event{
			trace.Acquire(1), trace.Release(1), trace.Acquire(2), // region 3: holds {2}, AH(2)={}
			trace.Write(base, 8),
			trace.Release(2),
		},
	)
}

func TestRefutesPairAcquisitionHistory(t *testing.T) {
	an := analyze(t, ahGadget())
	cs := an.Conflicts()
	if len(cs) != 1 {
		t.Fatalf("want 1 predicted record, got %v", cs)
	}
	r0 := core.RegionID{Core: 0, Seq: 3}
	r1 := core.RegionID{Core: 1, Seq: 3}
	if !an.PredictsPair(cs[0].Line, r0, r1) {
		t.Fatal("gadget pair not predicted (lockset/phase reasoning regressed)")
	}
	if !an.RefutesPair(r0, r1) || !an.RefutesPair(r1, r0) {
		t.Error("acquisition-history cycle not refuted (should be symmetric)")
	}
	pairs, clashing, refuted := an.WitnessPairs(cs[0], 0)
	if len(pairs) != 0 || clashing != 1 || refuted != 1 {
		t.Errorf("WitnessPairs = %v clashing=%d refuted=%d, want fully refuted record",
			pairs, clashing, refuted)
	}
}

func TestRefutesPairRealizableVariantNotRefuted(t *testing.T) {
	an := analyze(t, realizableGadget())
	r0 := core.RegionID{Core: 0, Seq: 3}
	r1 := core.RegionID{Core: 1, Seq: 3}
	if an.RefutesPair(r0, r1) {
		t.Fatal("realizable pair refuted: the refutation predicate is unsound")
	}
	cs := an.Conflicts()
	if len(cs) != 1 {
		t.Fatalf("want 1 predicted record, got %v", cs)
	}
	pairs, clashing, refuted := an.WitnessPairs(cs[0], 0)
	if refuted != 0 || clashing != 1 || !reflect.DeepEqual(pairs, [][2]core.RegionID{{r0, r1}}) {
		t.Errorf("WitnessPairs = %v clashing=%d refuted=%d", pairs, clashing, refuted)
	}
}

func TestRefutesPairReentrantAcquiresAreNotAcquisitions(t *testing.T) {
	// T0 re-acquires lock 2 reentrantly while already holding it from
	// before lock 1: the reentrant acquire never blocks, so it must not
	// enter lock 1's acquisition history — refuting here would be
	// unsound (T0 can sit in its region holding {1,2} from the start,
	// and T1's region holding... nothing conflicting applies).
	tr := twoThreads("reentrant",
		[]trace.Event{
			trace.Acquire(2), trace.Acquire(1), trace.Acquire(2), // reentrant
			trace.Write(base, 8), // region 3: holds {1,2}
			trace.Release(2), trace.Release(1), trace.Release(2),
		},
		[]trace.Event{
			trace.Write(base, 8), // region 0: lock-free
		},
	)
	an := analyze(t, tr)
	r0 := core.RegionID{Core: 0, Seq: 3}
	r1 := core.RegionID{Core: 1, Seq: 0}
	if !an.PredictsPair(an.Conflicts()[0].Line, r0, r1) {
		t.Fatal("pair not predicted")
	}
	if an.RefutesPair(r0, r1) {
		t.Error("refuted a pair against a lock-free region")
	}
}

func TestWitnessPairsExpandsAggregatesPairwise(t *testing.T) {
	// T0's two lock-free regions write different bytes of the line; the
	// aggregate clashes with T1's read of byte 0 but only the first
	// member pair clashes pairwise — WitnessPairs must not offer the
	// byte-disjoint pair as a replay target.
	tr := twoThreads("agg",
		[]trace.Event{
			trace.Write(base, 1),
			trace.Acquire(5), trace.Release(5),
			trace.Write(base+1, 1),
		},
		[]trace.Event{
			trace.Read(base, 1),
		},
	)
	an := analyze(t, tr)
	cs := an.Conflicts()
	if len(cs) != 1 || cs[0].Pairs != 2 {
		t.Fatalf("want one record aggregating 2 pairs, got %v", cs)
	}
	pairs, clashing, refuted := an.WitnessPairs(cs[0], 0)
	want := [][2]core.RegionID{{{Core: 0, Seq: 0}, {Core: 1, Seq: 0}}}
	if !reflect.DeepEqual(pairs, want) || clashing != 1 || refuted != 0 {
		t.Errorf("WitnessPairs = %v clashing=%d refuted=%d, want %v/1/0", pairs, clashing, refuted, want)
	}
	// max truncates deterministically.
	if p, _, _ := an.WitnessPairs(cs[0], 1); len(p) != 1 {
		t.Errorf("max=1 returned %d pairs", len(p))
	}
	if !an.RecordContains(cs[0], want[0][0], want[0][1]) ||
		!an.RecordContains(cs[0], want[0][1], want[0][0]) {
		t.Error("RecordContains misses the clashing member pair (must be unordered)")
	}
	if an.RecordContains(cs[0], core.RegionID{Core: 0, Seq: 2}, core.RegionID{Core: 1, Seq: 0}) {
		t.Error("RecordContains accepts the byte-disjoint member pair")
	}
}

func TestConflictsSortedDocumentedOrder(t *testing.T) {
	// Three lines, multiple thread pairs: Conflicts() must come back in
	// (line, region pair, phase) order and identically across analyses.
	mk := func() *trace.Trace {
		return &trace.Trace{Name: "multi", Threads: [][]trace.Event{
			{trace.Write(base, 8), trace.Write(base+128, 8), trace.End()},
			{trace.Write(base, 8), trace.Write(base+256, 8), trace.End()},
			{trace.Read(base+128, 8), trace.Read(base+256, 8), trace.End()},
		}}
	}
	an := analyze(t, mk())
	cs := an.Conflicts()
	if len(cs) < 3 {
		t.Fatalf("want >=3 records, got %v", cs)
	}
	if !sort.SliceIsSorted(cs, func(i, j int) bool {
		x, y := cs[i], cs[j]
		if x.Line != y.Line {
			return x.Line < y.Line
		}
		if x.RegionA.Core != y.RegionA.Core {
			return x.RegionA.Core < y.RegionA.Core
		}
		if x.RegionA.Seq != y.RegionA.Seq {
			return x.RegionA.Seq < y.RegionA.Seq
		}
		if x.RegionB.Core != y.RegionB.Core {
			return x.RegionB.Core < y.RegionB.Core
		}
		if x.RegionB.Seq != y.RegionB.Seq {
			return x.RegionB.Seq < y.RegionB.Seq
		}
		return x.Phase < y.Phase
	}) {
		t.Errorf("Conflicts() not in documented order: %v", cs)
	}
	if again := analyze(t, mk()).Conflicts(); !reflect.DeepEqual(cs, again) {
		t.Error("Conflicts() not byte-stable across analyses")
	}
}
