package witness_test

import (
	"testing"

	"arcsim/internal/core"
	"arcsim/internal/machine"
	"arcsim/internal/protocols"
	"arcsim/internal/sim"
	"arcsim/internal/static"
	"arcsim/internal/static/witness"
	"arcsim/internal/trace"
	"arcsim/internal/workload"
)

func twoThreads(name string, t0, t1 []trace.Event) *trace.Trace {
	return &trace.Trace{Name: name, Threads: [][]trace.Event{
		append(t0, trace.End()),
		append(t1, trace.End()),
	}}
}

const base = core.Addr(0x1000)

func examine(t *testing.T, tr *trace.Trace, opt witness.Options) (*static.Analysis, *witness.Report) {
	t.Helper()
	an, err := static.Analyze(tr)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	rep, err := witness.Examine(tr, an, opt)
	if err != nil {
		t.Fatalf("Examine: %v", err)
	}
	return an, rep
}

// TestConfirmsDefaultScheduleConflict: a plain unsynchronized write-write
// race manifests under the default schedule, so the record confirms from
// the baseline run alone (OrderDefault, zero replays).
func TestConfirmsDefaultScheduleConflict(t *testing.T) {
	tr := twoThreads("racy",
		[]trace.Event{trace.Write(base, 8)},
		[]trace.Event{trace.Write(base+4, 8)},
	)
	an, rep := examine(t, tr, witness.Options{Oracle: true})
	if rep.Predicted != 1 || rep.Confirmed != 1 {
		t.Fatalf("want 1 predicted/confirmed, got %+v", rep)
	}
	p := rep.Predictions[0]
	if p.Witness == nil || p.Witness.Order != witness.OrderDefault || rep.Replays != 0 {
		t.Fatalf("default-schedule conflict should confirm without replays: %+v (replays %d)",
			p.Witness, rep.Replays)
	}
	// The witness contract: the shipped directive replays to a detection.
	ok, _, err := witness.Replay(tr, an, p.Conflict, *p.Witness, witness.Options{Oracle: true})
	if err != nil || !ok {
		t.Fatalf("witness replay did not detect the conflict (ok=%v err=%v)", ok, err)
	}
}

// TestRefutesAcquisitionHistoryGadget: the canonical AH cycle is
// classified Refuted without spending any replay.
func TestRefutesAcquisitionHistoryGadget(t *testing.T) {
	tr := twoThreads("ah-gadget",
		[]trace.Event{
			trace.Acquire(1), trace.Acquire(2), trace.Release(2),
			trace.Write(base, 8),
			trace.Release(1),
		},
		[]trace.Event{
			trace.Acquire(2), trace.Acquire(1), trace.Release(1),
			trace.Write(base, 8),
			trace.Release(2),
		},
	)
	_, rep := examine(t, tr, witness.Options{})
	if rep.Predicted != 1 || rep.Refuted != 1 || rep.Replays != 0 {
		t.Fatalf("want 1 refuted with 0 replays, got %+v", rep)
	}
}

// TestDirectedReplayConfirmsLockGatedPair: T0's write region holds lock
// 1 after passing through lock 2; T1's write region holds lock 2 after
// releasing lock 1. The default schedule serializes the regions (T0 wins
// the tie on lock 1 and finishes before T1's region opens), so only a
// directed co-timing — T1 through acq1/rel1 first, then T0 held open in
// its region until T1 enters — raises the conflict. This is the
// tentpole's reason to exist: a prediction neither refutable nor visible
// in today's interleaving, confirmed by schedule direction.
func TestDirectedReplayConfirmsLockGatedPair(t *testing.T) {
	tr := twoThreads("lock-gated",
		[]trace.Event{
			trace.Acquire(1), trace.Acquire(2), trace.Release(2),
			trace.Write(base, 8),
			trace.Release(1),
		},
		[]trace.Event{
			trace.Acquire(1), trace.Release(1), trace.Acquire(2),
			trace.Write(base, 8),
			trace.Release(2),
		},
	)
	an, rep := examine(t, tr, witness.Options{Oracle: true})
	if rep.Predicted != 1 {
		t.Fatalf("want 1 prediction, got %+v", rep)
	}
	p := rep.Predictions[0]
	if p.Status != witness.Confirmed {
		t.Fatalf("lock-gated pair not confirmed: %+v", p)
	}
	if p.Witness.Order == witness.OrderDefault || rep.Replays == 0 {
		t.Fatalf("confirmation should have required a directed replay: %+v (replays %d)",
			p.Witness, rep.Replays)
	}
	ok, _, err := witness.Replay(tr, an, p.Conflict, *p.Witness, witness.Options{Oracle: true})
	if err != nil || !ok {
		t.Fatalf("directed witness did not replay (ok=%v err=%v)", ok, err)
	}
	// Sanity: the default schedule really does NOT detect this pair —
	// otherwise the test is vacuous.
	if ok, _, _ := witness.Replay(tr, an, p.Conflict,
		witness.Directive{Line: p.Conflict.Line, Order: witness.OrderDefault}, witness.Options{}); ok {
		t.Fatal("default schedule detects the pair; the directed case is untested")
	}
}

// TestBudgetExhaustionLeavesUnwitnessed: with a zero-replay budget the
// lock-gated pair stays Unwitnessed (not misclassified).
func TestBudgetExhaustionLeavesUnwitnessed(t *testing.T) {
	tr := twoThreads("lock-gated",
		[]trace.Event{
			trace.Acquire(1), trace.Acquire(2), trace.Release(2),
			trace.Write(base, 8),
			trace.Release(1),
		},
		[]trace.Event{
			trace.Acquire(1), trace.Release(1), trace.Acquire(2),
			trace.Write(base, 8),
			trace.Release(2),
		},
	)
	_, rep := examine(t, tr, witness.Options{MaxReplays: -1})
	if rep.Unwitnessed != 1 || rep.Replays != 0 {
		t.Fatalf("want 1 unwitnessed with 0 replays, got %+v", rep)
	}
	if rep.Precision() != 0 {
		t.Fatalf("precision with nothing classified should be 0, got %g", rep.Precision())
	}
}

// TestExamineRacyWorkloads: catalog racy workloads classify with high
// precision under the default budget, every confirmed witness replays,
// and replays stay within budget.
func TestExamineRacyWorkloads(t *testing.T) {
	for _, spec := range workload.RacySuite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			tr := spec.Build(workload.Params{Threads: 4, Seed: 2, Scale: 0.05})
			an, rep := examine(t, tr, witness.Options{})
			if rep.Predicted == 0 {
				t.Fatal("racy workload predicted no conflicts")
			}
			if rep.Confirmed == 0 {
				t.Error("racy workload confirmed no conflicts")
			}
			if rep.Replays > 64 {
				t.Errorf("budget exceeded: %d replays", rep.Replays)
			}
			for _, p := range rep.Predictions {
				if (p.Status == witness.Confirmed) != (p.Witness != nil) {
					t.Fatalf("witness presence disagrees with status: %+v", p)
				}
			}
			// Replay a couple of confirmed witnesses end-to-end.
			checked := 0
			for _, p := range rep.Predictions {
				if p.Status != witness.Confirmed || checked >= 2 {
					continue
				}
				checked++
				ok, _, err := witness.Replay(tr, an, p.Conflict, *p.Witness, witness.Options{})
				if err != nil || !ok {
					t.Fatalf("confirmed witness %v did not replay (ok=%v err=%v)", p.Witness, ok, err)
				}
			}
		})
	}
}

// TestProvenDRFNeedsNoRuns: an empty prediction set costs nothing.
func TestProvenDRFNeedsNoRuns(t *testing.T) {
	tr := twoThreads("drf",
		[]trace.Event{trace.Write(base, 8)},
		[]trace.Event{trace.Write(base+128, 8)},
	)
	_, rep := examine(t, tr, witness.Options{})
	if rep.Predicted != 0 || rep.Precision() != 1 {
		t.Fatalf("DRF program misreported: %+v", rep)
	}
}

// TestRandomDirectorDeterminism: equal seeds replay equal schedules
// (cycle-identical runs), the property FuzzWitness's reproducibility
// rests on.
func TestRandomDirectorDeterminism(t *testing.T) {
	spec, _ := workload.ByName("racy-sharing")
	tr := spec.Build(workload.Params{Threads: 4, Seed: 2, Scale: 0.04})
	run := func(seed uint64) *sim.Result {
		m, p, err := protocols.Build(protocols.CE, machine.Default(4))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(m, p, tr, sim.Options{Director: witness.NewRandomDirector(seed)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a1, a2 := run(7), run(7)
	if a1.Cycles != a2.Cycles || a1.Conflicts != a2.Conflicts || a1.TotalEnergyPJ != a2.TotalEnergyPJ {
		t.Errorf("equal seeds diverged: %d/%d conflicts, %d/%d cycles",
			a1.Conflicts, a2.Conflicts, a1.Cycles, a2.Cycles)
	}
}
