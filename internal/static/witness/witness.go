// Package witness implements the analyzer's precision tier: it takes
// the static analyzer's predicted conflicts — sound but deliberately
// conservative — and spends directed dynamic effort to classify each
// prediction.
//
//   - Confirmed: some legal schedule raises the conflict, and we hold a
//     replayable witness for it — a Directive naming the region pair and
//     entry order, executed by a deterministic schedule director
//     (sim.Director), so the directive alone reproduces the detection.
//   - Refuted: provably unrealizable under every schedule
//     (static.RefutesPair's acquisition-history argument, applied to
//     every byte-clashing member pair of the record).
//   - Unwitnessed: neither, within budget. Soundness is unaffected —
//     an unwitnessed prediction is still a prediction.
//
// Classification is tiered by cost: refutation is free (static), one
// default-schedule run confirms everything today's interleaving already
// detects, and only the remainder pays for directed replays that
// co-time the two target regions. The resulting precision metric
// (confirmed+refuted over predicted) and the refined per-job
// confirmed-conflict counts feed the WIT experiment and the scheduler
// cost model (sched.EstimateCost).
package witness

import (
	"errors"
	"fmt"

	"arcsim/internal/core"
	"arcsim/internal/machine"
	"arcsim/internal/protocols"
	"arcsim/internal/sim"
	"arcsim/internal/static"
	"arcsim/internal/trace"
)

// Order selects which target region the directed schedule opens first.
type Order uint8

const (
	// OrderDefault marks a witness needing no direction: the engine's
	// default schedule already detects the conflict.
	OrderDefault Order = iota
	// OrderAFirst holds region A open until B co-times with it.
	OrderAFirst
	// OrderBFirst is the mirror: B enters first.
	OrderBFirst
)

func (o Order) String() string {
	switch o {
	case OrderAFirst:
		return "a-first"
	case OrderBFirst:
		return "b-first"
	}
	return "default"
}

// Directive is a replayable witness schedule: co-time regions A and B
// on Line, opening Order's side first. Because the co-timing director is
// a deterministic function of the directive, this small value is the
// whole artifact — Replay re-derives the schedule and the detection.
type Directive struct {
	Line  core.Line     `json:"line"`
	A     core.RegionID `json:"a"`
	B     core.RegionID `json:"b"`
	Order Order         `json:"order"`
}

func (d Directive) String() string {
	return fmt.Sprintf("line %#x %v/%v %s", uint64(d.Line.Base()), d.A, d.B, d.Order)
}

// Status classifies one prediction.
type Status uint8

const (
	// Unwitnessed predictions exhausted the replay budget unresolved.
	Unwitnessed Status = iota
	// Confirmed predictions carry a replayable witness directive.
	Confirmed
	// Refuted predictions are provably unrealizable in any schedule.
	Refuted
)

func (s Status) String() string {
	switch s {
	case Confirmed:
		return "confirmed"
	case Refuted:
		return "refuted"
	}
	return "unwitnessed"
}

// Prediction is one record's classification.
type Prediction struct {
	Conflict static.PredictedConflict
	Status   Status
	// Witness is the replayable schedule, non-nil exactly when
	// Status == Confirmed.
	Witness *Directive
	// Clashing and RefutedPairs count the record's byte-clashing member
	// pairs and how many of those the acquisition-history pass refuted.
	Clashing     int
	RefutedPairs int
	// Replays is how many directed replays this record consumed.
	Replays int
}

// Report is the witness engine's output for one program.
type Report struct {
	Protocol    string
	Predicted   int
	Confirmed   int
	Refuted     int
	Unwitnessed int
	// Replays counts directed replays executed (the default-schedule
	// run and refutations are not replays).
	Replays     int
	Predictions []Prediction
}

// Precision is the fraction of predictions classified either way —
// confirmed (realizable, with a witness) or refuted (unrealizable,
// with a proof). 1 for programs with no predictions.
func (r *Report) Precision() float64 {
	if r.Predicted == 0 {
		return 1
	}
	return float64(r.Confirmed+r.Refuted) / float64(r.Predicted)
}

// Options tunes an examination.
type Options struct {
	// Protocol is the detecting design replays run under (default
	// protocols.CE).
	Protocol string
	// MaxReplays bounds the total directed replays across all
	// predictions (default 64). The budget policy is deliberately
	// global, not per-record: racy programs concentrate predictions on
	// a few lines, and a global budget degrades to Unwitnessed tails
	// instead of multiplying run time by the record count.
	MaxReplays int
	// PairLimit bounds the member pairs tried per record (default 4);
	// each pair costs up to two replays (both orders).
	PairLimit int
	// MaxCycles aborts a runaway replay (default 50M, the conformance
	// bound).
	MaxCycles uint64
	// Oracle mirrors every replay into the golden detector, turning
	// each witness run into a conformance check too.
	Oracle bool
}

func (o Options) normalized() Options {
	if o.Protocol == "" {
		o.Protocol = protocols.CE
	}
	if o.MaxReplays == 0 {
		o.MaxReplays = 64
	}
	if o.PairLimit == 0 {
		o.PairLimit = 4
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 50_000_000
	}
	return o
}

// machineConfig adapts the default machine to arbitrary thread counts
// the same way internal/conformance does: trim the AIM entry count to
// the nearest per-tile power-of-two multiple of the associativity so
// generated programs (any thread count) build valid machines.
func machineConfig(cores int) machine.Config {
	cfg := machine.Default(cores)
	sets := 1
	for sets*2*cfg.AIM.Ways*cores <= cfg.AIM.Entries {
		sets *= 2
	}
	cfg.AIM.Entries = sets * cfg.AIM.Ways * cores
	return cfg
}

// run executes tr under opt's protocol with the given director (nil for
// the default schedule).
func run(tr *trace.Trace, dir sim.Director, opt Options) (*sim.Result, error) {
	m, p, err := protocols.Build(opt.Protocol, machineConfig(tr.NumThreads()))
	if err != nil {
		return nil, err
	}
	return sim.Run(m, p, tr, sim.Options{
		CheckWithOracle: opt.Oracle,
		MaxCycles:       opt.MaxCycles,
		Director:        dir,
	})
}

// scheduleFault reports errors that condemn one schedule, not the
// examination: a program (or a directed interleaving of it) may
// genuinely deadlock — the AH refutation gadget is the classic deadly
// embrace — or exceed the cycle bound. Such a run simply detected
// nothing.
func scheduleFault(err error) bool {
	return errors.Is(err, sim.ErrDeadlock) || errors.Is(err, sim.ErrMaxCycles)
}

// confirmsRecord reports whether res detected a conflict belonging to
// record pc, and if so which region pair.
func confirmsRecord(an *static.Analysis, pc static.PredictedConflict, res *sim.Result) (core.RegionID, core.RegionID, bool) {
	for _, ex := range res.Exceptions {
		c := ex.Conflict
		if c.Line == pc.Line && an.RecordContains(pc, c.First, c.Second) {
			return c.First, c.Second, true
		}
	}
	return core.RegionID{}, core.RegionID{}, false
}

// Replay executes d's schedule and reports whether it raised a conflict
// belonging to record pc — the verification half of the witness
// contract: every Confirmed prediction's directive must Replay true.
func Replay(tr *trace.Trace, an *static.Analysis, pc static.PredictedConflict, d Directive, opt Options) (bool, *sim.Result, error) {
	opt = opt.normalized()
	var dir sim.Director
	if d.Order != OrderDefault {
		dir = newCoTimer(d)
	}
	res, err := run(tr, dir, opt)
	if err != nil {
		if scheduleFault(err) {
			return false, nil, nil
		}
		return false, nil, err
	}
	_, _, ok := confirmsRecord(an, pc, res)
	return ok, res, nil
}

// RefutedDRF reports whether every predicted conflict record of an is
// statically refuted — the free tier of the examination, costing no
// simulation. Such a program is dynamically DRF (no schedule realizes
// any prediction) even though the analyzer could not prove DRF; callers
// that cannot afford an Examine (e.g. the scheduler's cost model) can
// still claim the refinement this check grants. False when the program
// is proven DRF outright (nothing was predicted, nothing refined).
func RefutedDRF(an *static.Analysis) bool {
	records := an.Conflicts()
	if len(records) == 0 {
		return false
	}
	for _, pc := range records {
		_, clashing, refuted := an.WitnessPairs(pc, 1)
		if clashing == 0 || refuted != clashing {
			return false
		}
	}
	return true
}

// Examine classifies every predicted conflict of an (which must be tr's
// analysis). See the package comment for the tiering.
func Examine(tr *trace.Trace, an *static.Analysis, opt Options) (*Report, error) {
	opt = opt.normalized()
	records := an.Conflicts()
	rep := &Report{Protocol: opt.Protocol, Predicted: len(records)}
	if len(records) == 0 {
		return rep, nil
	}
	// Tier 2 (tier 1 is the per-record refutation below, which is
	// free): one default-schedule run confirms, at the cost of a single
	// simulation, every record today's interleaving already detects.
	// Lazy — a fully refuted program never simulates — and tolerant of
	// programs whose default schedule deadlocks (they just detect
	// nothing by default).
	var base *sim.Result
	baseline := func() (*sim.Result, error) {
		if base != nil {
			return base, nil
		}
		res, err := run(tr, nil, opt)
		if err != nil && !scheduleFault(err) {
			return nil, fmt.Errorf("witness: baseline run: %w", err)
		}
		if res == nil {
			res = &sim.Result{}
		}
		base = res
		return base, nil
	}
	for _, pc := range records {
		p := Prediction{Conflict: pc, Status: Unwitnessed}
		pairs, clashing, refuted := an.WitnessPairs(pc, opt.PairLimit)
		p.Clashing, p.RefutedPairs = clashing, refuted
		switch {
		case clashing > 0 && refuted == clashing:
			p.Status = Refuted
		default:
			b0, err := baseline()
			if err != nil {
				return nil, err
			}
			if a, b, ok := confirmsRecord(an, pc, b0); ok {
				p.Status = Confirmed
				p.Witness = &Directive{Line: pc.Line, A: a, B: b, Order: OrderDefault}
				break
			}
			// Tier 3: directed replays, co-timing one member pair per
			// attempt, both entry orders, within the global budget.
		replay:
			for _, pair := range pairs {
				for _, ord := range []Order{OrderAFirst, OrderBFirst} {
					if rep.Replays >= opt.MaxReplays {
						break replay
					}
					d := Directive{Line: pc.Line, A: pair[0], B: pair[1], Order: ord}
					rep.Replays++
					p.Replays++
					ok, _, err := Replay(tr, an, pc, d, opt)
					if err != nil {
						return nil, fmt.Errorf("witness: replay %v: %w", d, err)
					}
					if ok {
						p.Status = Confirmed
						p.Witness = &d
						break replay
					}
				}
			}
		}
		switch p.Status {
		case Confirmed:
			rep.Confirmed++
		case Refuted:
			rep.Refuted++
		default:
			rep.Unwitnessed++
		}
		rep.Predictions = append(rep.Predictions, p)
	}
	return rep, nil
}
