// The co-timing director: a deterministic sim.Director that steers the
// scheduler toward overlapping two specific regions, plus the seeded
// random director the fuzz targets use to probe arbitrary schedules.
package witness

import (
	"arcsim/internal/core"
	"arcsim/internal/sim"
	"arcsim/internal/trace"
)

// clash mirrors the analyzer's conflict predicate: bytes where the two
// footprints overlap with at least one writer.
func clash(x, y core.AccessBits) core.ByteMask {
	return (x.WriteMask & y.Touched()) | (x.Touched() & y.WriteMask)
}

// boundaryNext reports whether stepping the core would process a region
// boundary (an exhausted thread's one remaining step is the implicit
// final boundary).
func boundaryNext(cs sim.CoreState) bool {
	if !cs.HasNext {
		return true
	}
	switch cs.Next.Op {
	case trace.OpAcquire, trace.OpRelease, trace.OpBarrier, trace.OpEnd:
		return true
	}
	return false
}

// coTimer steers the schedule toward opening the directive's two target
// regions simultaneously with clashing accesses, in three phases:
//
//   - park the primary entirely until the secondary reaches the "door"
//     of its target region (one boundary short of entering) — the
//     secondary gets first claim on any locks it must pass through;
//   - advance the primary into its region, holding the secondary at
//     the door;
//   - release the secondary through the door with both regions' closing
//     boundaries held open, until the accumulated per-side accesses on
//     the target line clash — at which point the detecting protocol has
//     had its conflict and all holds release.
//
// Non-target cores, and any step that is not a hold, follow the default
// policy (minimum ready time, lowest id).
//
// Holds are preferences, not locks: when every runnable core is held,
// the director defers and the engine's default policy steps one anyway,
// so directed runs can neither deadlock nor livelock — a failed
// co-timing just degrades toward the default schedule, and the attempt
// is judged solely by whether the targeted conflict was detected.
type coTimer struct {
	line core.Line
	tc   [2]int    // target cores: index 0 = side A, 1 = side B
	ts   [2]uint64 // target region seqs
	// primary is the side that must enter its region first (the
	// directive's Order).
	primary int

	reg  [2]uint64          // each target core's current region seq
	bits [2]core.AccessBits // per-side accumulated target-line accesses
	met  bool               // the clash was realized
	dead bool               // a target region closed before the clash
}

func newCoTimer(d Directive) *coTimer {
	ct := &coTimer{
		line: d.Line,
		tc:   [2]int{int(d.A.Core), int(d.B.Core)},
		ts:   [2]uint64{d.A.Seq, d.B.Seq},
	}
	if d.Order == OrderBFirst {
		ct.primary = 1
	}
	return ct
}

func (ct *coTimer) Pick(cores []sim.CoreState) int {
	if ct.met || ct.dead {
		return -1
	}
	for s := 0; s < 2; s++ {
		cs := cores[ct.tc[s]]
		if cs.Region > ct.ts[s] || cs.Done {
			ct.dead = true
			return -1
		}
	}
	sec := 1 - ct.primary
	primIn := cores[ct.tc[ct.primary]].Region == ct.ts[ct.primary]
	secCS := cores[ct.tc[sec]]
	// The secondary is "ready" once it is parked at its region's entry
	// boundary (or already inside — a seq-0 region has no door).
	secReady := secCS.Region == ct.ts[sec] ||
		(secCS.Region+1 == ct.ts[sec] && boundaryNext(secCS))
	held := func(c int) bool {
		for s := 0; s < 2; s++ {
			if c != ct.tc[s] {
				continue
			}
			cs := cores[c]
			if cs.Region == ct.ts[s] && boundaryNext(cs) {
				return true // hold the entered target region open
			}
			if s == ct.primary && !primIn && !secReady {
				return true // park the primary until the secondary is at its door
			}
			if s == sec && !primIn && cs.Region+1 == ct.ts[s] && boundaryNext(cs) {
				return true // hold the secondary at the door
			}
		}
		return false
	}
	pick := -1
	for c, cs := range cores {
		if !cs.Runnable || held(c) {
			continue
		}
		if pick == -1 || cs.Ready < cores[pick].Ready {
			pick = c
		}
	}
	return pick // -1 when all runnable cores are held: defer
}

func (ct *coTimer) Stepped(c int, ev trace.Event, now uint64) {
	s := -1
	switch c {
	case ct.tc[0]:
		s = 0
	case ct.tc[1]:
		s = 1
	default:
		return
	}
	switch ev.Op {
	case trace.OpAcquire, trace.OpRelease, trace.OpBarrier, trace.OpEnd:
		ct.reg[s]++
	case trace.OpRead, trace.OpWrite:
		if ct.reg[s] != ct.ts[s] {
			return
		}
		acc := ev.Mem()
		if acc.Line() != ct.line {
			return
		}
		ct.bits[s].Add(acc.Kind, acc.Mask())
		if clash(ct.bits[0], ct.bits[1]) != 0 {
			ct.met = true
		}
	}
}

// RandomDirector picks uniformly among the runnable cores from a seeded
// xorshift64 stream — a deterministic schedule fuzzer. FuzzWitness uses
// it to assert that refuted pairs stay undetected and soundness holds
// under schedules the default policy never produces.
type RandomDirector struct{ s uint64 }

// NewRandomDirector seeds a random director; equal seeds replay equal
// schedules on equal traces.
func NewRandomDirector(seed uint64) *RandomDirector {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15 // xorshift must not start at 0
	}
	return &RandomDirector{s: seed}
}

func (r *RandomDirector) Pick(cores []sim.CoreState) int {
	n := 0
	for _, cs := range cores {
		if cs.Runnable {
			n++
		}
	}
	if n == 0 {
		return -1
	}
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	k := int((r.s >> 1) % uint64(n))
	for c, cs := range cores {
		if !cs.Runnable {
			continue
		}
		if k == 0 {
			return c
		}
		k--
	}
	return -1
}

// Stepped ignores the observation.
func (*RandomDirector) Stepped(int, trace.Event, uint64) {}
