module arcsim

go 1.22
