package arcsim

import (
	"fmt"
	"io"

	"arcsim/internal/core"
	"arcsim/internal/trace"
)

// Trace is an opaque multithreaded workload trace, produced by
// TraceBuilder or loaded with ReadTrace.
type Trace struct {
	inner *trace.Trace
}

// Name returns the trace's name.
func (t *Trace) Name() string { return t.inner.Name }

// Threads returns the trace's thread count.
func (t *Trace) Threads() int { return t.inner.NumThreads() }

// Events returns the total event count.
func (t *Trace) Events() int { return t.inner.Events() }

// Encode serializes the trace in the binary ARCT format.
func (t *Trace) Encode(w io.Writer) error { return trace.WriteTo(w, t.inner) }

// ReadTrace loads a trace written with Trace.Encode.
func ReadTrace(r io.Reader) (*Trace, error) {
	inner, err := trace.ReadFrom(r)
	if err != nil {
		return nil, err
	}
	if err := inner.Validate(); err != nil {
		return nil, err
	}
	return &Trace{inner: inner}, nil
}

// TraceBuilder constructs custom workload traces through the public API.
// Thread indices are 0-based and map 1:1 to simulated cores. Memory
// accesses must not cross 64-byte cache-line boundaries; every thread
// must release all locks it acquires, and all threads must join the same
// sequence of barriers.
type TraceBuilder struct {
	t   *trace.Trace
	err error
}

// NewTraceBuilder starts a trace with the given name and thread count.
func NewTraceBuilder(name string, threads int) *TraceBuilder {
	b := &TraceBuilder{t: &trace.Trace{Name: name, Threads: make([][]trace.Event, threads)}}
	if threads <= 0 {
		b.err = fmt.Errorf("arcsim: trace needs at least one thread")
	}
	return b
}

func (b *TraceBuilder) emit(thread int, ev trace.Event) *TraceBuilder {
	if b.err != nil {
		return b
	}
	if thread < 0 || thread >= len(b.t.Threads) {
		b.err = fmt.Errorf("arcsim: thread %d out of range (have %d)", thread, len(b.t.Threads))
		return b
	}
	b.t.Threads[thread] = append(b.t.Threads[thread], ev)
	return b
}

// Read appends a load of size bytes at addr on the given thread.
func (b *TraceBuilder) Read(thread int, addr uint64, size int) *TraceBuilder {
	return b.emit(thread, trace.Read(core.Addr(addr), uint8(size)))
}

// Write appends a store of size bytes at addr.
func (b *TraceBuilder) Write(thread int, addr uint64, size int) *TraceBuilder {
	return b.emit(thread, trace.Write(core.Addr(addr), uint8(size)))
}

// Acquire appends a lock acquisition (a region boundary).
func (b *TraceBuilder) Acquire(thread int, lock uint32) *TraceBuilder {
	return b.emit(thread, trace.Acquire(lock))
}

// Release appends a lock release (a region boundary).
func (b *TraceBuilder) Release(thread int, lock uint32) *TraceBuilder {
	return b.emit(thread, trace.Release(lock))
}

// Barrier appends a barrier join (a region boundary). All threads must
// join barriers in the same order.
func (b *TraceBuilder) Barrier(thread int, id uint32) *TraceBuilder {
	return b.emit(thread, trace.Barrier(id))
}

// Compute appends cycles of non-memory work.
func (b *TraceBuilder) Compute(thread int, cycles uint32) *TraceBuilder {
	return b.emit(thread, trace.Compute(cycles))
}

// Build finalizes and validates the trace. Threads without an explicit
// end get one appended.
func (b *TraceBuilder) Build() (*Trace, error) {
	if b.err != nil {
		return nil, b.err
	}
	for i := range b.t.Threads {
		n := len(b.t.Threads[i])
		if n == 0 || b.t.Threads[i][n-1].Op != trace.OpEnd {
			b.t.Threads[i] = append(b.t.Threads[i], trace.End())
		}
	}
	if err := b.t.Validate(); err != nil {
		return nil, err
	}
	return &Trace{inner: b.t}, nil
}
