package arcsim_test

import (
	"bytes"
	"strings"
	"testing"

	"arcsim"
)

func TestRunAllProtocolsOnQuickWorkload(t *testing.T) {
	for _, p := range arcsim.Protocols() {
		rep, err := arcsim.Run(arcsim.Config{
			Protocol: p,
			Workload: "blackscholes",
			Cores:    4,
			Scale:    0.02,
		})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if rep.Protocol != string(p) || rep.Cores != 4 {
			t.Errorf("report identity wrong: %+v", rep)
		}
		if rep.Cycles == 0 || rep.MemAccesses == 0 {
			t.Errorf("%s: empty run", p)
		}
		if len(rep.Conflicts) != 0 {
			t.Errorf("%s: conflicts in DRF workload", p)
		}
		if !strings.Contains(rep.String(), "cycles") {
			t.Error("String() missing content")
		}
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := arcsim.Run(arcsim.Config{Protocol: arcsim.ARC, Workload: "doom"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	if _, err := arcsim.Run(arcsim.Config{Protocol: "token", Workload: "x264"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestWorkloadsCatalog(t *testing.T) {
	ws := arcsim.Workloads()
	if len(ws) != 17 {
		t.Fatalf("catalog size = %d, want 17", len(ws))
	}
	racy := 0
	for _, w := range ws {
		if w.Name == "" || w.Description == "" {
			t.Errorf("incomplete catalog entry: %+v", w)
		}
		if w.Racy {
			racy++
		}
	}
	if racy != 3 {
		t.Errorf("racy workloads = %d, want 3", racy)
	}
}

func TestTraceBuilderRacyPair(t *testing.T) {
	tb := arcsim.NewTraceBuilder("custom-race", 2)
	tb.Write(0, 0x1000, 8).Compute(0, 500)
	tb.Compute(1, 50).Read(1, 0x1000, 8)
	tr, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := arcsim.RunTrace(arcsim.Config{
		Protocol: arcsim.CEPlus, Cores: 2, VerifyWithOracle: true,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Conflicts) != 1 {
		t.Fatalf("conflicts = %d, want 1", len(rep.Conflicts))
	}
	c := rep.Conflicts[0]
	if c.LineAddr != 0x1000 || c.FirstCore != 0 || c.SecondCore != 1 {
		t.Errorf("conflict attribution: %+v", c)
	}
	if !c.FirstWrote || c.SecondWrote {
		t.Errorf("conflict kinds: %+v", c)
	}
	if c.String() == "" {
		t.Error("empty conflict string")
	}
}

func TestTraceBuilderLockedIsDRF(t *testing.T) {
	tb := arcsim.NewTraceBuilder("custom-locked", 2)
	for th := 0; th < 2; th++ {
		for i := 0; i < 20; i++ {
			tb.Acquire(th, 7)
			tb.Read(th, 0x2000, 8).Write(th, 0x2000, 8)
			tb.Release(th, 7)
		}
	}
	tr, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []arcsim.Protocol{arcsim.CE, arcsim.ARC} {
		rep, err := arcsim.RunTrace(arcsim.Config{Protocol: p, Cores: 2, VerifyWithOracle: true}, tr)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Conflicts) != 0 {
			t.Errorf("%s: locked accesses conflicted", p)
		}
	}
}

func TestTraceBuilderErrors(t *testing.T) {
	if _, err := arcsim.NewTraceBuilder("x", 0).Build(); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := arcsim.NewTraceBuilder("x", 1).Read(5, 0, 8).Build(); err == nil {
		t.Error("out-of-range thread accepted")
	}
	if _, err := arcsim.NewTraceBuilder("x", 1).Read(0, 62, 8).Build(); err == nil {
		t.Error("line-crossing access accepted")
	}
	if _, err := arcsim.NewTraceBuilder("x", 1).Acquire(0, 1).Build(); err == nil {
		t.Error("unreleased lock accepted")
	}
}

func TestRunTraceThreadMismatch(t *testing.T) {
	tr, err := arcsim.NewTraceBuilder("two", 2).Read(0, 0, 8).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := arcsim.RunTrace(arcsim.Config{Protocol: arcsim.Mesi, Cores: 4}, tr); err == nil {
		t.Fatal("thread/core mismatch accepted")
	}
}

func TestRunTraceNil(t *testing.T) {
	if _, err := arcsim.RunTrace(arcsim.Config{Protocol: arcsim.Mesi}, nil); err == nil {
		t.Fatal("nil trace accepted")
	}
}

func TestTraceSerializationRoundTrip(t *testing.T) {
	tr, err := arcsim.NewTraceBuilder("rt", 2).Write(0, 0x40, 4).Read(1, 0x80, 8).Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := arcsim.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "rt" || got.Threads() != 2 || got.Events() != tr.Events() {
		t.Errorf("round trip changed trace: %s %d %d", got.Name(), got.Threads(), got.Events())
	}
}

func TestAIMEntriesOverride(t *testing.T) {
	rep, err := arcsim.Run(arcsim.Config{
		Protocol: arcsim.CEPlus, Workload: "racy-sharing", Cores: 4, Scale: 0.05,
		AIMEntries: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AIMHits+rep.AIMMisses == 0 {
		t.Error("AIM unused")
	}
	// An impossible AIM geometry must be rejected.
	if _, err := arcsim.Run(arcsim.Config{
		Protocol: arcsim.CEPlus, Workload: "canneal", Cores: 4, Scale: 0.05,
		AIMEntries: 100,
	}); err == nil {
		t.Error("invalid AIM geometry accepted")
	}
}

func TestFailStop(t *testing.T) {
	rep, err := arcsim.Run(arcsim.Config{
		Protocol: arcsim.ARC, Workload: "racy-sharing", Cores: 4, Scale: 0.05,
		FailStop: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Halted || len(rep.Conflicts) != 1 {
		t.Errorf("fail-stop: halted=%v conflicts=%d", rep.Halted, len(rep.Conflicts))
	}
}

func TestReportDerivedMetrics(t *testing.T) {
	rep, err := arcsim.Run(arcsim.Config{
		Protocol: arcsim.Mesi, Workload: "swaptions", Cores: 2, Scale: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.IPC() <= 0 {
		t.Error("IPC not positive")
	}
	if hr := rep.L1HitRate(); hr <= 0 || hr > 1 {
		t.Errorf("hit rate %f out of range", hr)
	}
}

func TestMachineJSONOverride(t *testing.T) {
	data, err := arcsim.DefaultMachineJSON(4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := arcsim.Run(arcsim.Config{
		Protocol: arcsim.Mesi, Workload: "dedup", Scale: 0.03,
		Cores:       16, // overridden by the machine description below
		MachineJSON: data,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cores != 4 {
		t.Errorf("cores = %d, want 4 (from MachineJSON)", rep.Cores)
	}
	// Invalid JSON must be rejected.
	if _, err := arcsim.Run(arcsim.Config{
		Protocol: arcsim.Mesi, Workload: "dedup",
		MachineJSON: []byte(`{"Cores": -1}`),
	}); err == nil {
		t.Error("invalid machine JSON accepted")
	}
}
